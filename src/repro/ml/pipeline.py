"""Pipelines: standardise-then-classify, and the end-to-end HDC hybrid.

:class:`ScaledClassifier` mirrors the Kaggle/reference notebooks the
paper normalises against: standardise raw clinical features before the
scale-sensitive models (KNN, SGD, SVC, logistic regression, the NN).

:class:`HDCFeaturePipeline` is the deployable unit of the paper's
pipeline: a fitted :class:`~repro.core.records.RecordEncoder` plus a
downstream classifier behind one ``predict(raw_rows)`` surface.  Pure-HDC
models (:class:`~repro.core.classifier.HammingClassifier` /
:class:`~repro.core.classifier.PrototypeClassifier`) receive packed
``(n, words)`` batches; every other estimator receives the dense 0/1
hypervector matrix (the §II-D "hypervectors as features" hybrid).  This
is the object :mod:`repro.persist` saves and :mod:`repro.serve` loads.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, clone
from repro.ml.preprocessing import StandardScaler
from repro.utils.validation import check_array


class ScaledClassifier(BaseEstimator, ClassifierMixin):
    """Fit a StandardScaler and a fresh clone of ``estimator`` on top.

    Cloning semantics: ``get_params`` exposes the wrapped (unfitted)
    estimator, so :func:`repro.ml.base.clone` of the wrapper produces an
    independent pipeline; ``fit`` never mutates the template estimator.
    """

    def __init__(self, estimator: BaseEstimator) -> None:
        self.estimator = estimator

    def fit(self, X, y) -> "ScaledClassifier":
        self.scaler_ = StandardScaler().fit(X)
        self.estimator_ = clone(self.estimator)
        self.estimator_.fit(self.scaler_.transform(X), y)
        self.classes_ = self.estimator_.classes_
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("estimator_")
        return self.estimator_.predict(self.scaler_.transform(X))

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted("estimator_")
        return self.estimator_.predict_proba(self.scaler_.transform(X))

    def decision_function(self, X) -> np.ndarray:
        self._check_fitted("estimator_")
        inner = self.estimator_
        if not hasattr(inner, "decision_function"):
            raise AttributeError(
                f"{type(inner).__name__} has no decision_function"
            )
        return inner.decision_function(self.scaler_.transform(X))


class HDCFeaturePipeline(BaseEstimator, ClassifierMixin):
    """Raw clinical rows → hypervectors → classifier, as one estimator.

    Parameters
    ----------
    encoder:
        A :class:`~repro.core.records.RecordEncoder` (fitted or not; an
        unfitted encoder is fitted on the training matrix inside
        :meth:`fit`).
    estimator:
        Downstream classifier template; :meth:`fit` trains a fresh
        :func:`~repro.ml.base.clone` so the template stays unfitted.
    dense:
        Feature representation handed to the classifier.  ``None`` (the
        default) auto-selects: packed ``(n, words)`` uint64 for the
        native-Hamming models, dense 0/1 ``(n, dim)`` for everything
        else.  Force with ``True``/``False`` for ablations.

    Notes
    -----
    The pipeline is the unit of deployment: it is registered with
    :mod:`repro.persist` (``save_artifact(pipe, dir)``) and served by
    :mod:`repro.serve`, which feeds whole micro-batches through one
    :meth:`predict` call.
    """

    def __init__(
        self,
        encoder,
        estimator: BaseEstimator,
        *,
        dense: Optional[bool] = None,
    ) -> None:
        self.encoder = encoder
        self.estimator = estimator
        self.dense = dense
        # Observation-only tap: when set to a callable it receives
        # ``(features, is_dense)`` for every predict() batch — the
        # serving drift monitor reuses the features HDC already computed
        # instead of re-encoding traffic.  Runtime wiring, never
        # persisted (set_state re-runs __init__, which clears it).
        self.feature_hook = None

    def _wants_dense(self) -> bool:
        if self.dense is not None:
            return bool(self.dense)
        from repro.core.classifier import HammingClassifier, PrototypeClassifier

        return not isinstance(self.estimator, (HammingClassifier, PrototypeClassifier))

    def _features(self, X: np.ndarray) -> np.ndarray:
        enc = self.encoder_
        return enc.transform_dense(X) if self._dense_ else enc.transform(X)

    def fit(self, X, y) -> "HDCFeaturePipeline":
        """Fit the encoder (if needed) and a fresh estimator clone."""
        X = check_array(X, dtype=np.float64, name="X")
        enc = self.encoder
        if not getattr(enc, "_fitted", False):
            enc.fit(X)
        self.encoder_ = enc
        self._dense_ = self._wants_dense()
        self.estimator_ = clone(self.estimator)
        self.estimator_.fit(self._features(X), y)
        self.classes_ = self.estimator_.classes_
        self.n_features_in_ = X.shape[1]
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("estimator_")
        X = check_array(X, dtype=np.float64, name="X")
        feats = self._features(X)
        hook = self.feature_hook
        if hook is not None:
            # predict() only (not predict_proba): it is the serving hot
            # path, and hooking both would double-count traffic.
            hook(feats, self._dense_)
        return self.estimator_.predict(feats)

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted("estimator_")
        X = check_array(X, dtype=np.float64, name="X")
        return self.estimator_.predict_proba(self._features(X))

    # -- persistence hooks (repro.persist) -----------------------------
    def get_state(self) -> dict:
        """Fitted components only — the encoder state is stored once.

        The template ``estimator``/``encoder`` params would duplicate the
        fitted objects' (potentially large) packed tables in the artifact,
        so the fitted pair stands in for both on reload.
        """
        self._check_fitted("estimator_")
        return {
            "dense": self.dense,
            "encoder": self.encoder_,
            "estimator": self.estimator_,
            "classes": self.classes_,
            "n_features_in": self.n_features_in_,
            "used_dense": self._dense_,
        }

    def set_state(self, state: dict) -> "HDCFeaturePipeline":
        self.__init__(state["encoder"], state["estimator"], dense=state["dense"])
        self.encoder_ = state["encoder"]
        self.estimator_ = state["estimator"]
        self.classes_ = np.asarray(state["classes"])
        self.n_features_in_ = int(state["n_features_in"])
        self._dense_ = bool(state["used_dense"])
        return self
