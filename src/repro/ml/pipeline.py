"""Minimal pipeline: standardise-then-classify wrapper.

The Kaggle/reference notebooks the paper normalises against standardise
raw clinical features before the scale-sensitive models (KNN, SGD, SVC,
logistic regression, the NN).  Hypervector inputs are 0/1 and are passed
to models unscaled, so scaling is expressed as an estimator wrapper that
the experiment grid applies only on the raw-feature side.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, clone
from repro.ml.preprocessing import StandardScaler


class ScaledClassifier(BaseEstimator, ClassifierMixin):
    """Fit a StandardScaler and a fresh clone of ``estimator`` on top.

    Cloning semantics: ``get_params`` exposes the wrapped (unfitted)
    estimator, so :func:`repro.ml.base.clone` of the wrapper produces an
    independent pipeline; ``fit`` never mutates the template estimator.
    """

    def __init__(self, estimator: BaseEstimator) -> None:
        self.estimator = estimator

    def fit(self, X, y) -> "ScaledClassifier":
        self.scaler_ = StandardScaler().fit(X)
        self.estimator_ = clone(self.estimator)
        self.estimator_.fit(self.scaler_.transform(X), y)
        self.classes_ = self.estimator_.classes_
        return self

    def predict(self, X) -> np.ndarray:
        self._check_fitted("estimator_")
        return self.estimator_.predict(self.scaler_.transform(X))

    def predict_proba(self, X) -> np.ndarray:
        self._check_fitted("estimator_")
        return self.estimator_.predict_proba(self.scaler_.transform(X))

    def decision_function(self, X) -> np.ndarray:
        self._check_fitted("estimator_")
        inner = self.estimator_
        if not hasattr(inner, "decision_function"):
            raise AttributeError(
                f"{type(inner).__name__} has no decision_function"
            )
        return inner.decision_function(self.scaler_.transform(X))
