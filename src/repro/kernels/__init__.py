"""Pluggable kernel backends for the Hamming/popcount hot core.

Every hot path in the reproduction — fused record encoding, the tiled
top-k search engine, LOO cross-validation, the serving stack's fused
predict — funnels through five primitive kernels (the *registry
contract*, canonically spelled out in :mod:`repro.kernels.signatures`):

* ``hamming_block``          — dense ``(m, n)`` Hamming block
* ``topk_hamming_tile``      — one query tile vs. the whole store
* ``loo_topk_hamming_tile``  — one row span vs. all other rows
* ``add_bits_into``          — unpack-and-accumulate bit counts
* ``majority_vote_counts``   — per-bit vote counts of a packed stack

This package makes those kernels *pluggable*: a pure-``numpy`` baseline
(the previous in-tree implementations, extracted verbatim) and an
optional compiled ``native`` backend (cffi C extension with hardware
``popcnt`` via ``__builtin_popcountll``).  Selection mirrors the
``REPRO_WORKERS``/``REPRO_BACKEND`` pattern of
:func:`repro.parallel.pool.resolve_config`:

* ``REPRO_KERNEL=numpy``  — force the numpy baseline.
* ``REPRO_KERNEL=native`` — require the compiled backend; raises
  :class:`~repro.kernels.errors.KernelUnavailableError` with build
  instructions when it cannot be loaded.
* ``REPRO_KERNEL=auto`` (or unset) — use ``native`` when importable,
  silently fall back to ``numpy`` otherwise.

All backends are pinned **bit-identical** to each other and to the
``*_reference`` oracles by the differential suite in ``tests/kernels``;
hdlint HD006 additionally locks every backend module's kernel
signatures to the canonical contract.  Build the native extension with
``python -m repro.kernels.native_build``.
"""

from __future__ import annotations

from repro.kernels.errors import KernelBuildError, KernelUnavailableError
from repro.kernels.registry import (
    KERNEL_ENV,
    VALID_KERNELS,
    KernelBackend,
    active_backend,
    available_backends,
    get_backend,
    native_available,
    refresh,
    register_backend,
    resolve_kernel,
)
from repro.kernels.signatures import KERNEL_NAMES

__all__ = [
    "KERNEL_ENV",
    "KERNEL_NAMES",
    "VALID_KERNELS",
    "KernelBackend",
    "KernelBuildError",
    "KernelUnavailableError",
    "active_backend",
    "available_backends",
    "get_backend",
    "native_available",
    "refresh",
    "register_backend",
    "resolve_kernel",
]
