"""Build tool for the optional compiled kernel backend.

Compiles ``_repro_kernels_native`` — a small cffi C extension with
hardware popcount (``__builtin_popcountll``) implementations of the
registry kernels — into a cache directory outside the source tree::

    python -m repro.kernels.native_build            # build into the cache
    python -m repro.kernels.native_build --check    # report availability

The cache location defaults to
``$XDG_CACHE_HOME/repro-kernels/<py-platform-tag>`` (``~/.cache/...``)
and is overridden by ``REPRO_KERNEL_CACHE``; the loader in
:mod:`repro.kernels.native_backend` searches the same place, so a build
is picked up by every later process without an install step.  This
module stays importable with **stdlib only** — cffi is required to
*build*, never to ask where the cache is or to fall back to numpy.

Compile flags are tried in order (``-O3 -funroll-loops -fwrapv`` with
``-march=native``, then without, then bare) so exotic toolchains still
produce a working extension.
"""

from __future__ import annotations

import argparse
import os
import sys
import sysconfig
from pathlib import Path
from typing import List, Optional

MODULE_NAME = "_repro_kernels_native"

# Bumped whenever the C ABI below changes; the loader refuses mismatches
# so a stale cached build can never produce silently-wrong results.
KERNEL_ABI = 1

CACHE_ENV = "REPRO_KERNEL_CACHE"

CDEF = """
int repro_kernel_abi(void);
void repro_hamming_block(const uint64_t *A, long m,
                         const uint64_t *B, long n,
                         long words, int64_t *out);
void repro_topk_tile(const uint64_t *Q, long nq,
                     const uint64_t *X, long nx,
                     long words, long k, long self_start,
                     int64_t *best_d, int64_t *best_i);
void repro_add_bits_i16(const uint64_t *packed, long rows,
                        long words, long dim, int16_t *out);
void repro_add_bits_i64(const uint64_t *packed, long rows,
                        long words, long dim, int64_t *out);
void repro_vote_counts_i16(const uint64_t *stack, long rows, long m,
                           long words, long dim, int16_t *out);
void repro_vote_counts_i64(const uint64_t *stack, long rows, long m,
                           long words, long dim, int64_t *out);
"""

C_SOURCE = r"""
#include <stdint.h>

/* Bumped in lockstep with KERNEL_ABI in native_build.py. */
int repro_kernel_abi(void) { return 1; }

static inline int64_t hamming_words(const uint64_t *a, const uint64_t *b,
                                    long words) {
    int64_t d = 0;
    for (long w = 0; w < words; w++)
        d += (int64_t)__builtin_popcountll(a[w] ^ b[w]);
    return d;
}

void repro_hamming_block(const uint64_t *A, long m,
                         const uint64_t *B, long n,
                         long words, int64_t *out) {
    for (long i = 0; i < m; i++) {
        const uint64_t *a = A + i * words;
        int64_t *row = out + i * n;
        for (long j = 0; j < n; j++)
            row[j] = hamming_words(a, B + j * words, words);
    }
}

/* Streaming exact top-k: per query an insertion-sorted (distance, index)
 * array of k slots, pre-filled by the caller with (INT64_MAX, -1).
 * Candidates are visited in ascending index order, insertion shifts only
 * while the held distance is strictly greater, and full lists reject
 * d >= worst — together that reproduces the stable-argsort tie-break
 * (ties to the lowest candidate index) bit-for-bit.  self_start >= 0
 * marks the leave-one-out case: query q is candidate self_start + q and
 * skips itself.  Candidate blocks keep X rows cache-resident across the
 * query loop. */
#define REPRO_CBLOCK 512

void repro_topk_tile(const uint64_t *Q, long nq,
                     const uint64_t *X, long nx,
                     long words, long k, long self_start,
                     int64_t *best_d, int64_t *best_i) {
    for (long c0 = 0; c0 < nx; c0 += REPRO_CBLOCK) {
        long c1 = c0 + REPRO_CBLOCK < nx ? c0 + REPRO_CBLOCK : nx;
        for (long q = 0; q < nq; q++) {
            const uint64_t *qv = Q + q * words;
            int64_t *bd = best_d + q * k;
            int64_t *bi = best_i + q * k;
            int64_t worst = bd[k - 1];
            for (long c = c0; c < c1; c++) {
                if (self_start >= 0 && c == self_start + q)
                    continue;
                int64_t d = hamming_words(qv, X + c * words, words);
                if (d >= worst)
                    continue;
                long p = k - 1;
                while (p > 0 && bd[p - 1] > d) {
                    bd[p] = bd[p - 1];
                    bi[p] = bi[p - 1];
                    p--;
                }
                bd[p] = d;
                bi[p] = c;
                worst = bd[k - 1];
            }
        }
    }
}

/* Unpack-and-accumulate: for each valid bit position, add 0/1 into the
 * integer accumulator.  The last word honours the tail-padding contract
 * by clamping at dim, so garbage padding bits can never leak into
 * counts. */
#define REPRO_ADD_BITS(SUFFIX, TYPE)                                      \
void repro_add_bits_##SUFFIX(const uint64_t *packed, long rows,           \
                             long words, long dim, TYPE *out) {           \
    for (long i = 0; i < rows; i++) {                                     \
        const uint64_t *row = packed + i * words;                         \
        TYPE *acc = out + i * dim;                                        \
        for (long w = 0; w < words; w++) {                                \
            uint64_t word = row[w];                                       \
            long base = w * 64;                                           \
            long lim = dim - base < 64 ? dim - base : 64;                 \
            for (long b = 0; b < lim; b++)                                \
                acc[base + b] += (TYPE)((word >> b) & 1u);                \
        }                                                                 \
    }                                                                     \
}

REPRO_ADD_BITS(i16, int16_t)
REPRO_ADD_BITS(i64, int64_t)

/* Unlike repro_add_bits_* (one accumulator row per packed row), all m
 * feature rows of a record accumulate into the SAME dim-wide row. */
#define REPRO_VOTE_COUNTS(SUFFIX, TYPE)                                   \
void repro_vote_counts_##SUFFIX(const uint64_t *stack, long rows, long m, \
                                long words, long dim, TYPE *out) {        \
    for (long i = 0; i < rows; i++) {                                     \
        const uint64_t *rec = stack + i * m * words;                      \
        TYPE *acc = out + i * dim;                                        \
        for (long j = 0; j < m; j++) {                                    \
            const uint64_t *row = rec + j * words;                        \
            for (long w = 0; w < words; w++) {                            \
                uint64_t word = row[w];                                   \
                long base = w * 64;                                       \
                long lim = dim - base < 64 ? dim - base : 64;             \
                for (long b = 0; b < lim; b++)                            \
                    acc[base + b] += (TYPE)((word >> b) & 1u);            \
            }                                                             \
        }                                                                 \
    }                                                                     \
}

REPRO_VOTE_COUNTS(i16, int16_t)
REPRO_VOTE_COUNTS(i64, int64_t)
"""

# -fwrapv: accumulator adds rely on two's-complement wrap matching numpy.
BASE_FLAGS = ["-O3", "-funroll-loops", "-fwrapv"]


def default_cache_dir() -> Path:
    """Where built extensions live: ``REPRO_KERNEL_CACHE`` or the user cache.

    The directory is keyed by the interpreter/platform tag so a shared
    home directory never mixes incompatible binaries.
    """
    env = os.environ.get(CACHE_ENV)
    if env:
        return Path(env)
    root = os.environ.get("XDG_CACHE_HOME") or str(Path.home() / ".cache")
    tag = f"cp{sys.version_info.major}{sys.version_info.minor}-{sysconfig.get_platform()}"
    return Path(root) / "repro-kernels" / tag


def build(target_dir: Optional[os.PathLike] = None, *, verbose: bool = False) -> Path:
    """Compile the extension into ``target_dir`` (default: the cache dir).

    Returns the path of the built shared object.  Raises
    :class:`repro.kernels.errors.KernelBuildError` when cffi is missing
    or every compile-flag attempt fails.
    """
    from repro.kernels.errors import KernelBuildError

    try:
        from cffi import FFI
    except ImportError as exc:
        raise KernelBuildError(
            "building the native kernel backend requires cffi "
            "(pip install 'repro[native]'); the numpy backend needs no build"
        ) from exc

    target = Path(target_dir) if target_dir is not None else default_cache_dir()
    target.mkdir(parents=True, exist_ok=True)

    attempts: List[List[str]] = [BASE_FLAGS + ["-march=native"], BASE_FLAGS, []]
    last_error: Optional[BaseException] = None
    for flags in attempts:
        builder = FFI()
        builder.cdef(CDEF)
        builder.set_source(MODULE_NAME, C_SOURCE, extra_compile_args=flags)
        try:
            return Path(builder.compile(tmpdir=str(target), verbose=verbose))
        except Exception as exc:  # distutils/cc failures come in many shapes
            last_error = exc
    raise KernelBuildError(
        f"native kernel build failed with every flag set {attempts}: {last_error}"
    ) from last_error


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.kernels.native_build",
        description="Build the compiled (cffi) kernel backend.",
    )
    parser.add_argument(
        "--target", default=None,
        help=f"output directory (default: {default_cache_dir()})",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="report whether the native backend currently loads, then exit",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    if args.check:
        from repro.kernels import native_backend

        if native_backend.available():
            print(f"native backend OK (abi {KERNEL_ABI})")
            return 0
        print(f"native backend unavailable: {native_backend.load_error()}")
        return 1

    from repro.kernels.errors import KernelBuildError

    try:
        built = build(args.target, verbose=args.verbose)
    except KernelBuildError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"built {built}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
