"""Exception types for the kernel backend registry.

Kept in their own module so backend implementations can raise them
without importing :mod:`repro.kernels.registry` (which imports the
backends lazily — a module-level cycle would otherwise be one careless
import away).
"""

from __future__ import annotations


class KernelUnavailableError(RuntimeError):
    """A kernel backend was requested explicitly but cannot be loaded.

    Raised only for *explicit* selection (``REPRO_KERNEL=native`` or
    ``get_backend("native")``); ``auto`` resolution never raises — it
    falls back to the numpy baseline instead.
    """


class KernelBuildError(RuntimeError):
    """Building the native extension failed (no compiler, cffi missing, ...)."""
