"""Canonical kernel signatures — the registry's dispatch contract.

Each stub below is the *normative* positional signature of one registry
kernel.  Backend modules (``repro/kernels/*_backend.py``) must define
their implementations with exactly these positional parameters and
keyword defaults; hdlint HD006 parses this module's source and flags any
backend function whose positional signature drifts, the same way it
locks ``foo``/``foo_reference`` pairs.  The stubs are never called — the
registry binds real implementations from the backend modules.

Contract notes shared by every backend
--------------------------------------
* Inputs arrive **validated**: C-contiguous ``uint64`` packed arrays
  with matching word counts, ``k`` already clamped to the candidate
  count, accumulators integer-typed with the right shape.  Validation,
  runtime contracts, and obs spans live in the :mod:`repro.core`
  dispatchers, not in backends.
* All distance outputs are int64; accumulators keep the caller's dtype.
  No float intermediates anywhere (hdlint HD002 checks backends too).
* Tie-break: top-k rows are sorted ascending by ``(distance, index)``
  with ties to the lowest candidate index — exactly stable-argsort
  order.  Unfilled slots hold ``(int64 max, -1)``.
* Tiling knobs (``tile_cols``, ``word_chunk``) bound working-set memory
  only; results are invariant to them, and a backend that does not tile
  (the native one) may ignore them.
"""

from __future__ import annotations

# Kernel names the registry binds — one entry per stub below.
KERNEL_NAMES = (
    "hamming_block",
    "topk_hamming_tile",
    "loo_topk_hamming_tile",
    "add_bits_into",
    "majority_vote_counts",
)


def hamming_block(A, B, *, word_chunk=None):
    """Dense ``(m, n)`` int64 Hamming block between packed batches."""
    raise NotImplementedError("canonical signature stub — use repro.kernels.get_backend()")


def topk_hamming_tile(Q, X, k, *, tile_cols=1024, word_chunk=32):
    """k nearest candidates of ``X`` per row of query tile ``Q``.

    Returns ``(best_d, best_i)`` int64 ``(len(Q), k)`` arrays, each row
    ascending by ``(distance, index)``.
    """
    raise NotImplementedError("canonical signature stub — use repro.kernels.get_backend()")


def loo_topk_hamming_tile(X, start, stop, k, *, tile_cols=1024, word_chunk=32):
    """k nearest *other* rows of ``X`` for rows ``start:stop`` (leave-one-out).

    Returns ``(best_d, best_i)`` int64 ``(stop - start, k)`` arrays with
    the self-match excluded; requires ``k <= len(X) - 1``.
    """
    raise NotImplementedError("canonical signature stub — use repro.kernels.get_backend()")


def add_bits_into(packed, dim, out):
    """Add the unpacked 0/1 bits of ``packed`` into accumulator ``out`` in place."""
    raise NotImplementedError("canonical signature stub — use repro.kernels.get_backend()")


def majority_vote_counts(packed_stack, dim, out):
    """Accumulate per-bit vote counts ``(n, m, words) -> out (n, dim)`` in place."""
    raise NotImplementedError("canonical signature stub — use repro.kernels.get_backend()")
