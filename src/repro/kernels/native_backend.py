"""Compiled kernel backend: cffi wrappers over ``_repro_kernels_native``.

Loads the extension built by :mod:`repro.kernels.native_build` (plain
import first, then the shared cache directory), verifies its ABI stamp,
and exposes the registry kernels (canonical signatures —
:mod:`repro.kernels.signatures`) as thin zero-copy wrappers:
``ffi.from_buffer`` views the numpy arrays in place and cffi releases
the GIL around every C call, so the thread backend of
:mod:`repro.parallel` scales these kernels across cores.

Import failures are *recorded*, never raised: :func:`available` /
:func:`load_error` report the state, and the registry decides whether
that means fallback (``REPRO_KERNEL=auto``) or a hard
:class:`~repro.kernels.errors.KernelUnavailableError`
(``REPRO_KERNEL=native``).

The C kernels do not tile — one query block walks the whole candidate
store cache-blocked — so the ``tile_cols``/``word_chunk`` knobs are
accepted for contract compatibility and ignored (results are invariant
to them by contract).
"""

from __future__ import annotations

import importlib
import sys
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.kernels import native_build
from repro.kernels.numpy_backend import _EMPTY
from repro.kernels import numpy_backend as _numpy

# Loader state: mod is the imported extension (or None), error the
# human-readable reason it could not be used.
_state: Dict[str, Any] = {"checked": False, "mod": None, "error": None}


def _reset() -> None:
    """Forget the cached load attempt (used by ``repro.kernels.refresh``)."""
    _state.update(checked=False, mod=None, error=None)


def _try_import() -> None:
    if _state["checked"]:
        return
    _state["checked"] = True
    mod = None
    try:
        mod = importlib.import_module(native_build.MODULE_NAME)
    except ImportError:
        cache = native_build.default_cache_dir()
        if not any(cache.glob(native_build.MODULE_NAME + "*")):
            _state["error"] = (
                f"extension {native_build.MODULE_NAME!r} is not built; run "
                f"`python -m repro.kernels.native_build` (requires cffi + a C "
                f"compiler) or leave REPRO_KERNEL unset to use numpy"
            )
            return
        if str(cache) not in sys.path:
            sys.path.insert(0, str(cache))
        try:
            mod = importlib.import_module(native_build.MODULE_NAME)
        except ImportError as exc:
            _state["error"] = f"cached build in {cache} failed to import: {exc}"
            return
    abi = mod.lib.repro_kernel_abi()
    if abi != native_build.KERNEL_ABI:
        _state["error"] = (
            f"stale native build (abi {abi}, expected {native_build.KERNEL_ABI}); "
            f"rebuild with `python -m repro.kernels.native_build`"
        )
        return
    _state["mod"] = mod


def available() -> bool:
    """True when the compiled extension is importable and ABI-compatible."""
    _try_import()
    return _state["mod"] is not None


def load_error() -> Optional[str]:
    """Why the extension is unavailable (None when it loaded fine)."""
    _try_import()
    return _state["error"]


def _mod():
    _try_import()
    if _state["mod"] is None:
        from repro.kernels.errors import KernelUnavailableError

        raise KernelUnavailableError(
            f"native kernel backend unavailable: {_state['error']}"
        )
    return _state["mod"]


def _u64(buf: np.ndarray):
    mod = _state["mod"]
    return mod.ffi.from_buffer("uint64_t[]", buf)


# ----------------------------------------------------------------------
# Registry kernels (canonical signatures: repro.kernels.signatures)
# ----------------------------------------------------------------------
def hamming_block(
    A: np.ndarray, B: np.ndarray, *, word_chunk: Optional[int] = None
) -> np.ndarray:
    """Dense ``(m, n)`` int64 Hamming block via hardware popcount."""
    mod = _mod()
    A = np.ascontiguousarray(A, dtype=np.uint64)
    B = np.ascontiguousarray(B, dtype=np.uint64)
    m, n = A.shape[0], B.shape[0]
    out = np.zeros((m, n), dtype=np.int64)
    if m and n and A.shape[-1]:
        mod.lib.repro_hamming_block(
            _u64(A), m, _u64(B), n, A.shape[-1],
            mod.ffi.from_buffer("int64_t[]", out, require_writable=True),
        )
    return out


def topk_hamming_tile(
    Q: np.ndarray, X: np.ndarray, k: int, *, tile_cols: int = 1024, word_chunk: int = 32
) -> Tuple[np.ndarray, np.ndarray]:
    """k nearest candidates per query row (tiling knobs ignored — see module doc)."""
    return _topk(Q, X, k, self_start=-1)


def loo_topk_hamming_tile(
    X: np.ndarray,
    start: int,
    stop: int,
    k: int,
    *,
    tile_cols: int = 1024,
    word_chunk: int = 32,
) -> Tuple[np.ndarray, np.ndarray]:
    """k nearest *other* rows for ``X[start:stop]`` (self-match skipped in C)."""
    X = np.ascontiguousarray(X, dtype=np.uint64)
    return _topk(X[start:stop], X, k, self_start=start)


def _topk(
    Q: np.ndarray, X: np.ndarray, k: int, *, self_start: int
) -> Tuple[np.ndarray, np.ndarray]:
    mod = _mod()
    Q = np.ascontiguousarray(Q, dtype=np.uint64)
    X = np.ascontiguousarray(X, dtype=np.uint64)
    nq = Q.shape[0]
    best_d = np.full((nq, k), _EMPTY, dtype=np.int64)
    best_i = np.full((nq, k), -1, dtype=np.int64)
    if nq and X.shape[0]:
        mod.lib.repro_topk_tile(
            _u64(Q), nq, _u64(X), X.shape[0], X.shape[-1], k, self_start,
            mod.ffi.from_buffer("int64_t[]", best_d, require_writable=True),
            mod.ffi.from_buffer("int64_t[]", best_i, require_writable=True),
        )
    return best_d, best_i


def add_bits_into(packed: np.ndarray, dim: int, out: np.ndarray) -> np.ndarray:
    """Accumulate unpacked bits into ``out`` in place (int16/int64 fast paths)."""
    if out.dtype == np.int16:
        fn = "repro_add_bits_i16"
        ctype = "int16_t[]"
    elif out.dtype == np.int64:
        fn = "repro_add_bits_i64"
        ctype = "int64_t[]"
    else:
        # Exotic accumulator dtypes stay on the (dtype-generic) numpy path.
        return _numpy.add_bits_into(packed, dim, out)
    if not out.flags.c_contiguous:
        return _numpy.add_bits_into(packed, dim, out)
    mod = _mod()
    packed = np.ascontiguousarray(packed, dtype=np.uint64)
    words = packed.shape[-1]
    rows = packed.size // words if words else 0
    if rows and words:
        getattr(mod.lib, fn)(
            _u64(packed), rows, words, dim,
            mod.ffi.from_buffer(ctype, out, require_writable=True),
        )
    return out


def majority_vote_counts(
    packed_stack: np.ndarray, dim: int, out: np.ndarray
) -> np.ndarray:
    """Per-bit vote counts of an ``(n, m, words)`` stack, accumulated in C."""
    if out.dtype == np.int16:
        fn = "repro_vote_counts_i16"
        ctype = "int16_t[]"
    elif out.dtype == np.int64:
        fn = "repro_vote_counts_i64"
        ctype = "int64_t[]"
    else:
        return _numpy.majority_vote_counts(packed_stack, dim, out)
    if not out.flags.c_contiguous:
        return _numpy.majority_vote_counts(packed_stack, dim, out)
    mod = _mod()
    packed_stack = np.ascontiguousarray(packed_stack, dtype=np.uint64)
    n, m, words = packed_stack.shape
    if n and m and words:
        getattr(mod.lib, fn)(
            _u64(packed_stack), n, m, words, dim,
            mod.ffi.from_buffer(ctype, out, require_writable=True),
        )
    return out
