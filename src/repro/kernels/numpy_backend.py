"""Pure-numpy kernel backend — the baseline every backend is pinned to.

These are the previous in-tree implementations of the registry kernels
(see :mod:`repro.kernels.signatures` for the contract), extracted from
``repro.core.distance`` / ``repro.core.search`` /
``repro.core.hypervector`` so they can be swapped against the compiled
``native`` backend.  The module is deliberately self-contained: numpy
plus :func:`repro.parallel.chunking.chunk_spans` only, and **no imports
from repro.core** — core dispatches *into* this package, never the
reverse.

The streaming merge machinery (:func:`topk_rows`, :func:`merge_topk`,
:data:`_EMPTY`) lives here too because the tile kernels are built on it;
``repro.core.search`` re-exports :func:`topk_rows` as public API.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.parallel.chunking import chunk_spans

# Running top-k slots start at this value so any real distance displaces
# them; all real Hamming distances are <= 64 * words << _EMPTY.
_EMPTY = np.iinfo(np.int64).max


# ----------------------------------------------------------------------
# Dense-row selection + streaming merge (shared by the tile kernels)
# ----------------------------------------------------------------------
def topk_rows(D: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """Exact k smallest entries per row of a dense distance matrix.

    Selection uses ``np.argpartition`` plus a vectorised boundary-tie
    repair, then a stable in-slice sort of just the k selected entries —
    never a full row sort.  Ties resolve to the lowest column index, and
    each returned row is sorted ascending by ``(value, column)``: exactly
    the first k columns of ``np.argsort(D, kind="stable")``.

    Returns ``(values, columns)``, each of shape ``(m, k)``.
    """
    D = np.asarray(D)
    if D.ndim != 2:
        raise ValueError(f"D must be 2-d, got shape {D.shape}")
    m, n = D.shape
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if k == n:
        # Selecting every column *is* a sort; keep the stable contract.
        idx = np.argsort(D, axis=1, kind="stable")
        return np.take_along_axis(D, idx, axis=1), idx
    part = np.argpartition(D, k - 1, axis=1)[:, :k]
    kth = np.take_along_axis(D, part, axis=1).max(axis=1, keepdims=True)
    # argpartition picks *some* k smallest; among entries equal to the
    # k-th value it may keep arbitrary columns.  Rebuild the selection
    # deterministically: everything strictly below the k-th value, then
    # the lowest-index columns equal to it until k slots are filled.
    below = D < kth
    at_kth = D == kth
    need = k - below.sum(axis=1, keepdims=True)
    keep_at_kth = at_kth & (np.cumsum(at_kth, axis=1) <= need)
    cols = np.nonzero(below | keep_at_kth)[1].reshape(m, k)
    vals = np.take_along_axis(D, cols, axis=1)
    order = np.argsort(vals, axis=1, kind="stable")  # in-slice, k elements
    return np.take_along_axis(vals, order, axis=1), np.take_along_axis(
        cols, order, axis=1
    )


def merge_topk(
    best_d: np.ndarray,
    best_i: np.ndarray,
    block: np.ndarray,
    col_start: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge one distance block into the running per-query top-k state.

    ``best_d`` / ``best_i`` are ``(q, k)`` rows sorted by ``(distance,
    index)``; ``block`` is ``(q, t)`` with global candidate indices
    ``col_start .. col_start + t``.  Candidate tiles must arrive in
    ascending global-index order: every index in ``block`` then exceeds
    every index already held, so the position-based tie-break of
    :func:`topk_rows` coincides with the global lowest-index contract.
    """
    q, k = best_d.shape
    if k == 1:
        # Running minimum: strict '<' keeps the earlier (lower) index.
        pos = block.argmin(axis=1)
        d = block[np.arange(q), pos]
        better = d < best_d[:, 0]
        best_d[better, 0] = d[better]
        best_i[better, 0] = pos[better] + col_start
        return best_d, best_i
    cand_d = np.concatenate([best_d, block], axis=1)
    vals, pos = topk_rows(cand_d, min(k, cand_d.shape[1]))
    cand_i = np.concatenate(
        [
            best_i,
            np.broadcast_to(
                np.arange(col_start, col_start + block.shape[1], dtype=np.int64),
                (q, block.shape[1]),
            ),
        ],
        axis=1,
    )
    return vals, np.take_along_axis(cand_i, pos, axis=1)


def merge_shard_topk(
    parts: "list[Tuple[np.ndarray, np.ndarray]]", k: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Gather per-shard top-k results into the global top-k (PR 9).

    ``parts`` holds one ``(distances, indices)`` pair per shard, each of
    shape ``(m, k_s)`` with **global** candidate indices, produced over a
    contiguous partition of the candidate store and listed in ascending
    shard order.  Because (a) every index in shard ``s`` precedes every
    index in shard ``s+1``, (b) each shard's rows are already ascending
    by ``(distance, index)``, and (c) :func:`topk_rows` breaks value ties
    by *column position* with a stable in-slice sort, concatenating the
    shards in order and selecting the k smallest reproduces the global
    lowest-index tie-break exactly — the result is bit-identical to
    running the single-shard engine over the whole store.
    """
    if not parts:
        raise ValueError("merge_shard_topk needs at least one shard result")
    if len(parts) == 1:
        d, i = parts[0]
        return d[:, :k], i[:, :k]
    cand_d = np.concatenate([d for d, _ in parts], axis=1)
    cand_i = np.concatenate([i for _, i in parts], axis=1)
    vals, pos = topk_rows(cand_d, min(k, cand_d.shape[1]))
    return vals, np.take_along_axis(cand_i, pos, axis=1)


# ----------------------------------------------------------------------
# Registry kernels (canonical signatures: repro.kernels.signatures)
# ----------------------------------------------------------------------
def hamming_block(
    A: np.ndarray, B: np.ndarray, *, word_chunk: Optional[int] = None
) -> np.ndarray:
    """Dense ``(m, n)`` Hamming block between two packed batches.

    The default evaluates ``popcount(A[:, None] ^ B[None, :])`` in one
    shot, materialising an ``m * n * words``-word XOR temporary.  With
    ``word_chunk`` set, the popcount instead accumulates over slices of
    ``word_chunk`` words, capping the temporary at ``m * n * word_chunk``
    words so modest tiles stay cache-resident.
    """
    A = np.asarray(A, dtype=np.uint64)
    B = np.asarray(B, dtype=np.uint64)
    words = A.shape[-1]
    if word_chunk is None or word_chunk >= words:
        # (m, 1, w) ^ (1, n, w) -> (m, n, w) -> popcount-sum -> (m, n)
        return np.bitwise_count(A[:, None, :] ^ B[None, :, :]).sum(
            axis=-1, dtype=np.int64
        )
    out = np.zeros((A.shape[0], B.shape[0]), dtype=np.int64)
    for start in range(0, words, word_chunk):
        stop = min(start + word_chunk, words)
        out += np.bitwise_count(
            A[:, None, start:stop] ^ B[None, :, start:stop]
        ).sum(axis=-1, dtype=np.int64)
    return out


def topk_hamming_tile(
    Q: np.ndarray, X: np.ndarray, k: int, *, tile_cols: int = 1024, word_chunk: int = 32
) -> Tuple[np.ndarray, np.ndarray]:
    """k nearest candidates of ``X`` per row of query tile ``Q``, streamed.

    Peak memory is one ``(len(Q), tile_cols)`` distance block plus the
    ``(len(Q), k)`` running state; candidate tiles arrive in ascending
    index order so the merge preserves the lowest-index tie-break.
    """
    q = Q.shape[0]
    best_d = np.full((q, k), _EMPTY, dtype=np.int64)
    best_i = np.full((q, k), -1, dtype=np.int64)
    for c0, c1 in chunk_spans(X.shape[0], tile_cols):
        block = hamming_block(Q, X[c0:c1], word_chunk=word_chunk)
        best_d, best_i = merge_topk(best_d, best_i, block, c0)
    return best_d, best_i


def loo_topk_hamming_tile(
    X: np.ndarray,
    start: int,
    stop: int,
    k: int,
    *,
    tile_cols: int = 1024,
    word_chunk: int = 32,
) -> Tuple[np.ndarray, np.ndarray]:
    """k nearest *other* rows of ``X`` for rows ``start:stop``.

    Streams candidate tiles exactly like :func:`topk_hamming_tile`; tiles
    overlapping the query span mask their self-distances with the int64
    sentinel ``64 * words + 1`` (greater than any true distance, so with
    ``k <= len(X) - 1`` a self-match can never survive the merge).
    """
    words = X.shape[-1]
    sentinel = np.int64(64 * words + 1)
    Qt = X[start:stop]
    q = Qt.shape[0]
    best_d = np.full((q, k), _EMPTY, dtype=np.int64)
    best_i = np.full((q, k), -1, dtype=np.int64)
    for c0, c1 in chunk_spans(X.shape[0], tile_cols):
        block = hamming_block(Qt, X[c0:c1], word_chunk=word_chunk)
        lo = max(start, c0)
        hi = min(stop, c1)
        if lo < hi:  # this candidate tile contains some of our own rows
            rows = np.arange(lo - start, hi - start)
            block[rows, rows + (start - c0)] = sentinel
        best_d, best_i = merge_topk(best_d, best_i, block, c0)
    return best_d, best_i


def add_bits_into(packed: np.ndarray, dim: int, out: np.ndarray) -> np.ndarray:
    """Add the unpacked 0/1 bits of ``packed`` into accumulator ``out`` in place.

    Self-contained little-endian unpack (the same layout as
    :func:`repro.core.hypervector.unpack_bits`) followed by one
    ``np.add``; ``casting="unsafe"`` keeps narrow accumulators (int16)
    without a widened copy.
    """
    packed = np.asarray(packed, dtype=np.uint64)
    bytes_view = np.ascontiguousarray(packed).view(np.uint8)
    bits = np.unpackbits(bytes_view, axis=-1, bitorder="little", count=dim)
    np.add(out, bits, out=out, casting="unsafe")
    return out


def majority_vote_counts(
    packed_stack: np.ndarray, dim: int, out: np.ndarray
) -> np.ndarray:
    """Accumulate per-bit vote counts ``(n, m, words) -> out (n, dim)`` in place.

    Column by column across the feature axis: each feature's ``(n,
    words)`` slice is unpacked and added on its own, so peak memory is
    ``O(n * dim)`` regardless of ``m``.
    """
    m = packed_stack.shape[1]
    for j in range(m):
        add_bits_into(packed_stack[:, j, :], dim, out)
    return out
