"""Backend registry + ``REPRO_KERNEL`` resolution.

Mirrors the env-resolution contract of
:func:`repro.parallel.pool.resolve_config` (``REPRO_WORKERS`` /
``REPRO_BACKEND``): an explicit argument always beats the environment,
``REPRO_KERNEL`` fills in when no argument is given, an invalid value
raises a ``ValueError`` that names the variable, and the resolved
outcome is fully introspectable (:func:`active_backend`,
:func:`available_backends`).

Resolution semantics::

    REPRO_KERNEL=numpy    force the numpy baseline
    REPRO_KERNEL=native   require the compiled backend (raises
                          KernelUnavailableError when it cannot load)
    REPRO_KERNEL=auto     native when importable, else numpy (default)

Backends are plain modules of kernel functions (canonical signatures in
:mod:`repro.kernels.signatures`); the registry wraps them into immutable
:class:`KernelBackend` records and caches one instance per name.
Backend modules are imported lazily inside the factories so importing
``repro.kernels`` never pays for (or fails on) a backend that is never
selected.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.kernels.errors import KernelUnavailableError

KERNEL_ENV = "REPRO_KERNEL"

#: Values accepted by ``REPRO_KERNEL`` / :func:`resolve_kernel`.
VALID_KERNELS = ("auto", "numpy", "native")


@dataclass(frozen=True)
class KernelBackend:
    """One resolved backend: a name plus bound registry kernels.

    ``fused`` marks backends whose :attr:`loo_topk_hamming_tile` runs
    the whole leave-one-out scan for a row span in one call — the
    dispatcher in :mod:`repro.core.search` then fans row spans straight
    out to workers instead of walking mirrored triangle tiles.
    """

    name: str
    fused: bool
    hamming_block: Callable
    topk_hamming_tile: Callable
    loo_topk_hamming_tile: Callable
    add_bits_into: Callable
    majority_vote_counts: Callable


def _make_numpy() -> KernelBackend:
    from repro.kernels import numpy_backend as m

    return KernelBackend(
        name="numpy",
        fused=False,
        hamming_block=m.hamming_block,
        topk_hamming_tile=m.topk_hamming_tile,
        loo_topk_hamming_tile=m.loo_topk_hamming_tile,
        add_bits_into=m.add_bits_into,
        majority_vote_counts=m.majority_vote_counts,
    )


def _make_native() -> KernelBackend:
    from repro.kernels import native_backend as m

    if not m.available():
        raise KernelUnavailableError(
            f"{KERNEL_ENV}=native requested but the compiled backend cannot "
            f"load: {m.load_error()}"
        )
    return KernelBackend(
        name="native",
        fused=True,
        hamming_block=m.hamming_block,
        topk_hamming_tile=m.topk_hamming_tile,
        loo_topk_hamming_tile=m.loo_topk_hamming_tile,
        add_bits_into=m.add_bits_into,
        majority_vote_counts=m.majority_vote_counts,
    )


_FACTORIES: Dict[str, Callable[[], KernelBackend]] = {
    "numpy": _make_numpy,
    "native": _make_native,
}
_instances: Dict[str, KernelBackend] = {}


def register_backend(name: str, factory: Callable[[], KernelBackend]) -> None:
    """Register an additional backend factory under ``name``.

    ``auto`` and already-registered names are rejected; a registered
    backend becomes selectable via ``get_backend(name)`` (env selection
    stays restricted to :data:`VALID_KERNELS`).
    """
    if not name or name == "auto":
        raise ValueError(f"invalid backend name {name!r}")
    if name in _FACTORIES:
        raise ValueError(f"backend {name!r} is already registered")
    _FACTORIES[name] = factory


def native_available() -> bool:
    """True when the compiled extension is importable (no exceptions)."""
    from repro.kernels import native_backend

    return native_backend.available()


def resolve_kernel(choice: Optional[str] = None) -> str:
    """Resolve a backend *name* from an explicit choice or ``REPRO_KERNEL``.

    ``None`` defers to the environment (default ``auto``); ``auto``
    resolves to ``native`` when the extension loads, else ``numpy``.
    Invalid values raise ``ValueError`` naming ``REPRO_KERNEL`` when
    they came from the environment.
    """
    from_env = False
    if choice is None:
        env = os.environ.get(KERNEL_ENV)
        from_env = env is not None
        choice = env if env is not None else "auto"
    valid = ("auto",) + tuple(sorted(_FACTORIES))
    if choice not in valid:
        source = KERNEL_ENV if from_env else "kernel backend"
        raise ValueError(f"{source} must be one of {valid}, got {choice!r}")
    if choice == "auto":
        return "native" if native_available() else "numpy"
    return choice


def get_backend(name: Optional[str] = None) -> KernelBackend:
    """The resolved, cached :class:`KernelBackend` for ``name`` (or the env)."""
    resolved = resolve_kernel(name)
    backend = _instances.get(resolved)
    if backend is None:
        backend = _FACTORIES[resolved]()
        _instances[resolved] = backend
    return backend


def active_backend() -> str:
    """Name of the backend the current environment resolves to."""
    return get_backend().name


def available_backends() -> Dict[str, bool]:
    """Loadability of every registered backend (never raises)."""
    out: Dict[str, bool] = {}
    for name in sorted(_FACTORIES):
        if name in _instances:
            out[name] = True
        elif name == "native":
            out[name] = native_available()
        else:
            try:
                _instances[name] = _FACTORIES[name]()
                out[name] = True
            except Exception:
                out[name] = False
    return out


def refresh() -> None:
    """Drop cached backend instances and forget native load attempts.

    Call after building the extension mid-process (tests, notebooks) so
    the next resolution sees it.
    """
    _instances.clear()
    from repro.kernels import native_backend

    native_backend._reset()
