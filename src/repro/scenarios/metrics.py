"""loadgen.* metrics: the harness's view into :mod:`repro.obs`.

Mirrors :mod:`repro.serve.metrics` on the client side of the wire, so a
scenario run exposes both halves of the conversation in one registry —
``serve.*`` says what the server did, ``loadgen.*`` says what the
clients experienced.  Names (after the Prometheus exporter's ``repro_``
prefix / ``_total`` suffix):

==========================  =========  ==================================
``loadgen.requests``        counter    requests issued by the harness
``loadgen.errors``          counter    non-2xx (or transport-failed) ones
``loadgen.runs``            counter    completed load runs
``loadgen.latency_seconds`` histogram  client-observed per-request latency
``loadgen.last_throughput`` gauge      throughput of the latest run (rps)
==========================  =========  ==================================

Same locking note as the serve metrics: registry metric objects are not
internally locked, the threaded engine mutates from many workers, so one
module lock serialises every event.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.obs.metrics import REGISTRY

if TYPE_CHECKING:  # circular at runtime: load.py imports this module
    from repro.scenarios.load import LoadReport

_LOCK = threading.Lock()


def record_load_request(latency_s: float, status: int) -> None:
    """One request the harness issued, successful or not."""
    with _LOCK:
        REGISTRY.counter("loadgen.requests", "Requests issued by the load harness.").add(1)
        if not 200 <= status < 300:
            REGISTRY.counter(
                "loadgen.errors", "Harness requests answered non-2xx or failed."
            ).add(1)
        REGISTRY.histogram(
            "loadgen.latency_seconds", "Client-observed per-request latency."
        ).observe(latency_s)


def record_load_run(report: "LoadReport") -> None:
    """One completed load run (open or closed loop)."""
    with _LOCK:
        REGISTRY.counter("loadgen.runs", "Completed load-generator runs.").add(1)
        REGISTRY.gauge(
            "loadgen.last_throughput", "Throughput of the most recent load run (rps)."
        ).set(report.throughput_rps)


__all__ = ["record_load_request", "record_load_run"]
