"""Synthetic load generation: seeded arrivals, injectable clock, reports.

Two arrival disciplines (the classic pair from load-testing literature):

* **open loop** — a Poisson arrival schedule at ``rate_rps`` is drawn up
  front from the traffic seed; requests fire at their scheduled instants
  whether or not earlier ones have completed.  This is the discipline
  that exposes saturation: the offered rate does not back off when the
  server slows down.
* **closed loop** — ``concurrency`` workers each hold one request in
  flight (request → response → next request).  The offered rate adapts
  to the server, which is what real interactive clients do.

Determinism is a hard requirement (the same discipline hdlint HD001
enforces on every other stochastic component): all randomness flows from
``TrafficSpec.seed`` through :mod:`repro.utils.rng`, and the wall clock
is injectable.  With :class:`FakeClock` plus a deterministic transport
the *entire run* — arrival schedule, per-request latencies, the final
report — is bit-identical across runs, so harness regressions are
testable without wall-clock sleeps.

Two execution engines share the reporting path:

* :func:`run_load` with ``workers="threads"`` drives a real HTTP server
  (:class:`HttpTransport`) with actual concurrency;
* ``workers="inline"`` runs a single-threaded discrete-event simulation
  of a FIFO server (service times supplied by the transport), used by
  the deterministic tests and the queueing-math sanity checks.
"""

from __future__ import annotations

import heapq
import json
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import span
from repro.scenarios.errors import ScenarioError
from repro.scenarios.metrics import record_load_request, record_load_run
from repro.scenarios.schema import SLOSpec, TrafficSpec
from repro.utils.rng import as_generator, derive_seed

LATENCY_PERCENTILES: Tuple[int, ...] = (50, 90, 95, 99)


# ----------------------------------------------------------------------
# clocks
# ----------------------------------------------------------------------
class SystemClock:
    """Monotonic wall clock (``perf_counter``) with real sleeping."""

    def now(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class FakeClock:
    """Deterministic clock: ``sleep`` advances simulated time instantly.

    Thread-safe so the threaded engine can also run against it, but its
    home is the inline simulation engine where it makes whole load runs
    reproducible bit-for-bit.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        with self._lock:
            self._now += max(0.0, float(seconds))

    def advance(self, seconds: float) -> None:
        self.sleep(seconds)


# ----------------------------------------------------------------------
# transports
# ----------------------------------------------------------------------
class HttpTransport:
    """POST rows to a live ``/predict`` endpoint; returns (status, seconds).

    Transport-level failures (refused connection, timeout) report status
    ``0`` so they are distinguishable from server-side 5xx in the
    report's ``status_counts``.
    """

    def __init__(self, base_url: str, *, timeout_s: float = 30.0) -> None:
        self.url = base_url.rstrip("/") + "/predict"
        self.timeout_s = float(timeout_s)

    def send(self, rows: Sequence[Sequence[float]]) -> Tuple[int, float]:
        body = json.dumps({"rows": [list(map(float, r)) for r in rows]}).encode("utf-8")
        req = urllib.request.Request(
            self.url, data=body, headers={"Content-Type": "application/json"}
        )
        started = time.perf_counter()
        try:
            with urllib.request.urlopen(req, timeout=self.timeout_s) as resp:
                resp.read()
                status = int(resp.status)
        except urllib.error.HTTPError as exc:
            exc.read()
            status = int(exc.code)
        except (urllib.error.URLError, OSError, TimeoutError):
            status = 0
        return status, time.perf_counter() - started


class FakeTransport:
    """Deterministic service-time model for the inline simulator.

    ``service_s`` is either a constant or ``f(request_index) -> seconds``;
    ``status_fn`` lets tests inject error codes at chosen indices.
    """

    def __init__(
        self,
        service_s: Any = 0.001,
        status_fn: Optional[Callable[[int], int]] = None,
    ) -> None:
        self._service = service_s
        self._status_fn = status_fn
        # The threaded runner shares one transport across workers, so
        # the request counter needs a lock to hand out unique indices.
        self._lock = threading.Lock()
        self._calls = 0

    def send(self, rows: Sequence[Sequence[float]]) -> Tuple[int, float]:
        with self._lock:
            i = self._calls
            self._calls += 1
        service = self._service(i) if callable(self._service) else float(self._service)
        status = self._status_fn(i) if self._status_fn is not None else 200
        return int(status), float(service)


# ----------------------------------------------------------------------
# arrival schedule
# ----------------------------------------------------------------------
def arrival_schedule(traffic: TrafficSpec) -> np.ndarray:
    """Seeded open-loop arrival offsets (seconds from run start).

    Poisson process at ``rate_rps``: exponential inter-arrival gaps drawn
    from a generator derived from ``traffic.seed``, cumulatively summed.
    Bit-identical for identical specs — the reproducibility anchor the
    deterministic harness tests pin.
    """
    traffic.validate()
    rng = as_generator(derive_seed(traffic.seed, "loadgen", "arrivals"))
    gaps = rng.exponential(scale=1.0 / traffic.rate_rps, size=traffic.n_requests)
    return np.cumsum(gaps)


def request_row_indices(
    traffic: TrafficSpec, n_rows_available: int
) -> np.ndarray:
    """Deterministic ``(n_requests, rows_per_request)`` row index plan.

    Each request draws its rows from a seeded permutation of the dataset,
    wrapping around — every run over the same spec replays the identical
    row stream.
    """
    traffic.validate()
    if n_rows_available < 1:
        raise ScenarioError("dataset has no rows to sample requests from")
    rng = as_generator(derive_seed(traffic.seed, "loadgen", "rows"))
    order = rng.permutation(n_rows_available)
    total = traffic.n_requests * traffic.rows_per_request
    flat = order[np.arange(total) % n_rows_available]
    return flat.reshape(traffic.n_requests, traffic.rows_per_request)


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------
@dataclass
class LoadReport:
    """Aggregated outcome of one load run (the unit a BENCH file stores)."""

    mode: str
    n_requests: int
    rows_per_request: int
    concurrency: int
    offered_rps: Optional[float]
    duration_s: float
    throughput_rps: float
    row_throughput_rps: float
    latency_ms: Dict[str, float]
    status_counts: Dict[str, int]
    error_rate: float
    slo_violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.slo_violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "n_requests": self.n_requests,
            "rows_per_request": self.rows_per_request,
            "concurrency": self.concurrency,
            "offered_rps": self.offered_rps,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "row_throughput_rps": self.row_throughput_rps,
            "latency_ms": dict(self.latency_ms),
            "status_counts": dict(self.status_counts),
            "error_rate": self.error_rate,
            "slo_violations": list(self.slo_violations),
        }


def _latency_summary(latencies_s: np.ndarray) -> Dict[str, float]:
    if latencies_s.size == 0:
        return {f"p{p}": 0.0 for p in LATENCY_PERCENTILES} | {"mean": 0.0, "max": 0.0}
    ms = latencies_s * 1000.0
    out = {f"p{p}": float(np.percentile(ms, p)) for p in LATENCY_PERCENTILES}
    out["mean"] = float(np.mean(ms))
    out["max"] = float(np.max(ms))
    return out


def evaluate_slo(
    slo: SLOSpec, latency_ms: Dict[str, float], error_rate: float, throughput_rps: float
) -> List[str]:
    """Human-readable list of violated objectives (empty = SLO met)."""
    violations: List[str] = []
    for pct_key, bound in (
        ("p50", slo.p50_ms),
        ("p95", slo.p95_ms),
        ("p99", slo.p99_ms),
    ):
        if bound is not None and latency_ms.get(pct_key, 0.0) > bound:
            violations.append(
                f"latency {pct_key} {latency_ms[pct_key]:.2f} ms > {bound:.2f} ms"
            )
    if error_rate > slo.max_error_rate:
        violations.append(
            f"error rate {error_rate:.4f} > {slo.max_error_rate:.4f}"
        )
    if slo.min_throughput_rps is not None and throughput_rps < slo.min_throughput_rps:
        violations.append(
            f"throughput {throughput_rps:.2f} rps < {slo.min_throughput_rps:.2f} rps"
        )
    return violations


def summarize(
    traffic: TrafficSpec,
    slo: SLOSpec,
    latencies_s: Sequence[float],
    statuses: Sequence[int],
    duration_s: float,
) -> LoadReport:
    """Fold raw per-request outcomes into a :class:`LoadReport`."""
    lat = np.asarray(latencies_s, dtype=np.float64)
    statuses = [int(s) for s in statuses]
    counts: Dict[str, int] = {}
    for s in statuses:
        key = str(s)
        counts[key] = counts.get(key, 0) + 1
    n = len(statuses)
    n_ok = sum(1 for s in statuses if 200 <= s < 300)
    error_rate = 0.0 if n == 0 else (n - n_ok) / n
    duration = max(float(duration_s), 1e-12)
    throughput = n / duration
    latency_ms = _latency_summary(lat)
    return LoadReport(
        mode=traffic.mode,
        n_requests=n,
        rows_per_request=traffic.rows_per_request,
        concurrency=traffic.concurrency,
        offered_rps=traffic.rate_rps if traffic.mode == "open" else None,
        duration_s=float(duration_s),
        throughput_rps=throughput,
        row_throughput_rps=throughput * traffic.rows_per_request,
        latency_ms=latency_ms,
        status_counts=dict(sorted(counts.items())),
        error_rate=error_rate,
        slo_violations=evaluate_slo(slo, latency_ms, error_rate, throughput),
    )


# ----------------------------------------------------------------------
# engines
# ----------------------------------------------------------------------
def _run_inline(
    traffic: TrafficSpec,
    transport: Any,
    clock: Any,
    request_rows: List[np.ndarray],
) -> Tuple[List[float], List[int], float]:
    """Single-threaded discrete-event simulation of a FIFO server.

    The transport supplies each request's service time; the engine does
    the queueing math.  Latency = completion − arrival, exactly as a
    client would measure it.  Fully deterministic under a fake clock.
    """
    start = clock.now()
    latencies: List[float] = []
    statuses: List[int] = []
    server_free = start
    if traffic.mode == "open":
        arrivals = start + arrival_schedule(traffic)
        for i, arrival in enumerate(arrivals):
            if clock.now() < arrival:
                clock.sleep(arrival - clock.now())
            status, service = transport.send(request_rows[i])
            begin = max(arrival, server_free)
            completion = begin + service
            server_free = completion
            if clock.now() < completion:
                clock.sleep(completion - clock.now())
            latencies.append(completion - arrival)
            statuses.append(status)
            record_load_request(completion - arrival, status)
        end = max(clock.now(), server_free)
    else:  # closed loop: one in-flight request per worker, FIFO server
        ready = [(start, w) for w in range(traffic.concurrency)]
        heapq.heapify(ready)
        for i in range(traffic.n_requests):
            arrival, worker = heapq.heappop(ready)
            status, service = transport.send(request_rows[i])
            begin = max(arrival, server_free)
            completion = begin + service
            server_free = completion
            latencies.append(completion - arrival)
            statuses.append(status)
            record_load_request(completion - arrival, status)
            heapq.heappush(ready, (completion, worker))
        end = max(server_free, start)
        if clock.now() < end:
            clock.sleep(end - clock.now())
    return latencies, statuses, end - start


def _run_threaded(
    traffic: TrafficSpec,
    transport: Any,
    clock: Any,
    request_rows: List[np.ndarray],
) -> Tuple[List[float], List[int], float]:
    """Real-concurrency engine used against live servers."""
    latencies: List[float] = [0.0] * traffic.n_requests
    statuses: List[int] = [0] * traffic.n_requests

    def fire(i: int, scheduled: Optional[float]) -> None:
        issued = clock.now()
        status, seconds = transport.send(request_rows[i])
        # Open-loop latency is measured from the *scheduled* arrival, so
        # dispatch backlog (coordinated omission) counts against the
        # server, not in its favour.
        base = issued if scheduled is None else min(issued, scheduled)
        latency = (clock.now() - base) if scheduled is not None else seconds
        latencies[i] = max(latency, seconds)
        statuses[i] = status
        record_load_request(latencies[i], status)

    start = clock.now()
    if traffic.mode == "open":
        offsets = arrival_schedule(traffic)
        with ThreadPoolExecutor(max_workers=traffic.concurrency) as pool:
            futures = []
            for i, offset in enumerate(offsets):
                delay = (start + offset) - clock.now()
                if delay > 0:
                    clock.sleep(delay)
                futures.append(pool.submit(fire, i, start + offset))
            for fut in futures:
                fut.result()
    else:
        counter = {"next": 0}
        lock = threading.Lock()

        def worker() -> None:
            while True:
                with lock:
                    i = counter["next"]
                    if i >= traffic.n_requests:
                        return
                    counter["next"] = i + 1
                fire(i, None)

        threads = [
            threading.Thread(target=worker, name=f"repro-loadgen-{w}")
            for w in range(traffic.concurrency)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    return latencies, statuses, clock.now() - start


def run_load(
    traffic: TrafficSpec,
    transport: Any,
    *,
    slo: Optional[SLOSpec] = None,
    clock: Optional[Any] = None,
    rows: Optional[np.ndarray] = None,
    workers: str = "threads",
) -> LoadReport:
    """Run one load experiment and fold the outcome into a report.

    Parameters
    ----------
    traffic:
        Arrival process description (validated here).
    transport:
        ``send(rows) -> (status, seconds)`` — :class:`HttpTransport`
        against a live server, or any deterministic stand-in.
    slo:
        Objectives to judge the run against (default: no bounds).
    clock:
        ``now()/sleep()`` provider; default :class:`SystemClock`.
    rows:
        ``(n, F)`` feature matrix requests sample from; defaults to a
        single zero-feature row (transport stand-ins ignore payloads).
    workers:
        ``"threads"`` for real concurrency, ``"inline"`` for the
        deterministic single-threaded simulation.
    """
    traffic.validate()
    slo = slo or SLOSpec()
    clock = clock or SystemClock()
    if workers not in ("threads", "inline"):
        raise ScenarioError(f"workers must be 'threads' or 'inline', got {workers!r}")
    if rows is None:
        rows = np.zeros((1, 1), dtype=np.float64)
    rows = np.asarray(rows, dtype=np.float64)
    plan = request_row_indices(traffic, rows.shape[0])
    request_rows = [rows[plan[i]] for i in range(traffic.n_requests)]
    engine = _run_inline if workers == "inline" else _run_threaded
    with span(
        "scenarios.load_run",
        mode=traffic.mode,
        n_requests=traffic.n_requests,
        workers=workers,
    ):
        latencies, statuses, duration = engine(traffic, transport, clock, request_rows)
    report = summarize(traffic, slo, latencies, statuses, duration)
    record_load_run(report)
    return report


# ----------------------------------------------------------------------
# saturation sweep
# ----------------------------------------------------------------------
def find_saturation(
    traffic: TrafficSpec,
    transport_factory: Callable[[], Any],
    *,
    slo: Optional[SLOSpec] = None,
    clock: Optional[Any] = None,
    rows: Optional[np.ndarray] = None,
    workers: str = "threads",
    start_rps: float = 25.0,
    growth: float = 2.0,
    max_steps: int = 8,
) -> Dict[str, Any]:
    """Step up open-loop offered load until the SLO breaks.

    Runs geometric rate steps (``start_rps * growth**k``); the
    *saturation point* is the highest offered rate whose report met the
    SLO (latency bounds + error budget).  Each step gets a fresh
    transport from ``transport_factory`` so per-step state (connection
    pools, fake-transport call counts) does not leak across rates.

    Returns ``{"saturation_rps": float | None, "steps": [...]}`` with one
    report dict per step, in offered-rate order.
    """
    if growth <= 1.0:
        raise ScenarioError(f"growth must be > 1, got {growth}")
    if start_rps <= 0:
        raise ScenarioError(f"start_rps must be > 0, got {start_rps}")
    slo = slo or SLOSpec()
    steps: List[Dict[str, Any]] = []
    saturation: Optional[float] = None
    rate = float(start_rps)
    for _ in range(max_steps):
        step_traffic = replace(traffic, mode="open", rate_rps=rate)
        report = run_load(
            step_traffic,
            transport_factory(),
            slo=slo,
            clock=clock,
            rows=rows,
            workers=workers,
        )
        steps.append({"offered_rps": rate} | report.to_dict())
        if report.ok:
            saturation = rate
        else:
            break
        rate *= growth
    return {"saturation_rps": saturation, "steps": steps}


__all__ = [
    "FakeClock",
    "FakeTransport",
    "HttpTransport",
    "LATENCY_PERCENTILES",
    "LoadReport",
    "SystemClock",
    "arrival_schedule",
    "evaluate_slo",
    "find_saturation",
    "request_row_indices",
    "run_load",
    "summarize",
]
