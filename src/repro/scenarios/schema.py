"""Declarative scenario schema: dataset + encoder + model + traffic + SLO.

A *scenario* is the unit of performance work in this repository: one
named, versioned description of a workload that can be resolved into an
offline experiment run (:mod:`repro.scenarios.resolve`), a persisted
model artifact, and a synthetic load run against a live
:class:`~repro.serve.http.ModelServer` (:mod:`repro.scenarios.load`).
Scenario files live under ``scenarios/`` as JSON or TOML; the parsed
form is a tree of frozen dataclasses.

Validation contract: every malformed field raises
:class:`~repro.scenarios.errors.ScenarioError` whose ``key`` attribute
is the dotted path of the offending field, and
``scenario_from_dict(scenario_to_dict(spec)) == spec`` holds for every
valid spec (the round-trip property pinned by
``tests/scenarios/test_schema.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.scenarios.errors import ScenarioError

SCENARIO_SCHEMA_VERSION = 1

DATASET_SOURCES: Tuple[str, ...] = ("pima_r", "pima_m", "sylhet", "ehr", "images")
MODEL_KINDS: Tuple[str, ...] = ("prototype", "hamming", "logistic")
TRAFFIC_MODES: Tuple[str, ...] = ("open", "closed")
TIE_RULES: Tuple[str, ...] = ("one", "zero", "random")

#: Per-source allowed ``dataset.params`` keys (value type, minimum).
_DATASET_PARAMS: Dict[str, Dict[str, Tuple[type, Union[int, float]]]] = {
    "pima_r": {},
    "pima_m": {},
    "sylhet": {},
    "ehr": {"n_patients": (int, 1), "n_visits": (int, 2)},
    "images": {"n_samples": (int, 4), "side": (int, 3), "flip_prob": (float, 0.0)},
}


# ----------------------------------------------------------------------
# field-level validation helpers (all raise ScenarioError with the key)
# ----------------------------------------------------------------------
def _require(cond: bool, key: str, message: str) -> None:
    if not cond:
        raise ScenarioError(message, key=key)


def _as_int(value: Any, key: str, *, minimum: Optional[int] = None) -> int:
    # bool is an int subclass; a scenario file saying ``dim = true`` is a bug.
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        key,
        f"expected an integer, got {type(value).__name__} ({value!r})",
    )
    if minimum is not None:
        _require(value >= minimum, key, f"must be >= {minimum}, got {value}")
    return int(value)


def _as_float(value: Any, key: str, *, minimum: Optional[float] = None) -> float:
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        key,
        f"expected a number, got {type(value).__name__} ({value!r})",
    )
    out = float(value)
    _require(out == out, key, "must not be NaN")
    if minimum is not None:
        _require(out >= minimum, key, f"must be >= {minimum}, got {out}")
    return out


def _as_str(value: Any, key: str, *, choices: Optional[Tuple[str, ...]] = None) -> str:
    _require(isinstance(value, str), key, f"expected a string, got {type(value).__name__}")
    if choices is not None:
        _require(value in choices, key, f"must be one of {list(choices)}, got {value!r}")
    return value


def _as_opt_float(value: Any, key: str, *, minimum: float = 0.0) -> Optional[float]:
    if value is None:
        return None
    return _as_float(value, key, minimum=minimum)


def _as_section(value: Any, key: str) -> Dict[str, Any]:
    _require(isinstance(value, Mapping), key, f"expected a table/object, got {type(value).__name__}")
    return dict(value)


def _no_unknown_keys(d: Mapping[str, Any], allowed: Tuple[str, ...], prefix: str) -> None:
    for k in d:
        if k not in allowed:
            raise ScenarioError(
                f"unknown key (allowed: {sorted(allowed)})",
                key=f"{prefix}.{k}" if prefix else str(k),
            )


# ----------------------------------------------------------------------
# spec dataclasses
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=True)
class DatasetSpec:
    """Which labelled population the scenario runs over."""

    source: str = "pima_r"
    seed: int = 2023
    params: Mapping[str, Any] = field(default_factory=dict)

    def validate(self, prefix: str = "dataset") -> "DatasetSpec":
        _as_str(self.source, f"{prefix}.source", choices=DATASET_SOURCES)
        _as_int(self.seed, f"{prefix}.seed", minimum=0)
        params = _as_section(self.params, f"{prefix}.params")
        allowed = _DATASET_PARAMS[self.source]
        _no_unknown_keys(params, tuple(allowed), f"{prefix}.params")
        for name, (typ, minimum) in allowed.items():
            if name not in params:
                continue
            if typ is int:
                _as_int(params[name], f"{prefix}.params.{name}", minimum=int(minimum))
            else:
                _as_float(params[name], f"{prefix}.params.{name}", minimum=float(minimum))
        return self


@dataclass(frozen=True, eq=True)
class EncoderSpec:
    """Record-encoder configuration (the paper's §II-B knobs)."""

    dim: int = 10_000
    seed: int = 7
    tie: str = "one"
    levels: Optional[int] = None

    def validate(self, prefix: str = "encoder") -> "EncoderSpec":
        _as_int(self.dim, f"{prefix}.dim", minimum=8)
        _as_int(self.seed, f"{prefix}.seed", minimum=0)
        _as_str(self.tie, f"{prefix}.tie", choices=TIE_RULES)
        if self.levels is not None:
            _as_int(self.levels, f"{prefix}.levels", minimum=2)
        return self


@dataclass(frozen=True, eq=True)
class ModelSpec:
    """Downstream classifier riding on the encoded hypervectors."""

    kind: str = "prototype"
    params: Mapping[str, Any] = field(default_factory=dict)

    def validate(self, prefix: str = "model") -> "ModelSpec":
        _as_str(self.kind, f"{prefix}.kind", choices=MODEL_KINDS)
        _as_section(self.params, f"{prefix}.params")
        return self


@dataclass(frozen=True, eq=True)
class TrafficSpec:
    """Synthetic traffic shape for the load generator.

    ``open`` mode fires requests on a seeded Poisson arrival schedule at
    ``rate_rps`` regardless of responses (``concurrency`` caps in-flight
    requests); ``closed`` mode keeps ``concurrency`` workers in a
    request→response→request loop (the classic closed-loop client).
    """

    mode: str = "closed"
    n_requests: int = 256
    rate_rps: float = 100.0
    concurrency: int = 8
    rows_per_request: int = 1
    seed: int = 0
    timeout_s: float = 30.0

    def validate(self, prefix: str = "traffic") -> "TrafficSpec":
        _as_str(self.mode, f"{prefix}.mode", choices=TRAFFIC_MODES)
        _as_int(self.n_requests, f"{prefix}.n_requests", minimum=1)
        rate = _as_float(self.rate_rps, f"{prefix}.rate_rps")
        _require(rate > 0, f"{prefix}.rate_rps", f"must be > 0, got {rate}")
        _as_int(self.concurrency, f"{prefix}.concurrency", minimum=1)
        _as_int(self.rows_per_request, f"{prefix}.rows_per_request", minimum=1)
        _as_int(self.seed, f"{prefix}.seed", minimum=0)
        timeout = _as_float(self.timeout_s, f"{prefix}.timeout_s")
        _require(timeout > 0, f"{prefix}.timeout_s", f"must be > 0, got {timeout}")
        return self


@dataclass(frozen=True, eq=True)
class SLOSpec:
    """Service-level objectives the load report is judged against.

    ``None`` disables a bound.  ``max_error_rate`` is the tolerated
    fraction of non-2xx responses (429s from deliberate overload count
    as errors here — a saturation sweep reads them as the signal).
    """

    p50_ms: Optional[float] = None
    p95_ms: Optional[float] = None
    p99_ms: Optional[float] = None
    max_error_rate: float = 0.0
    min_throughput_rps: Optional[float] = None

    def validate(self, prefix: str = "slo") -> "SLOSpec":
        _as_opt_float(self.p50_ms, f"{prefix}.p50_ms")
        _as_opt_float(self.p95_ms, f"{prefix}.p95_ms")
        _as_opt_float(self.p99_ms, f"{prefix}.p99_ms")
        rate = _as_float(self.max_error_rate, f"{prefix}.max_error_rate", minimum=0.0)
        _require(rate <= 1.0, f"{prefix}.max_error_rate", f"must be <= 1, got {rate}")
        _as_opt_float(self.min_throughput_rps, f"{prefix}.min_throughput_rps")
        return self


@dataclass(frozen=True, eq=True)
class ServeSpec:
    """Server-side knobs forwarded to :class:`repro.serve.ServeConfig`."""

    max_batch: int = 64
    max_wait_ms: float = 5.0
    queue_size: int = 256
    max_rows_per_request: int = 1024

    def validate(self, prefix: str = "serve") -> "ServeSpec":
        _as_int(self.max_batch, f"{prefix}.max_batch", minimum=1)
        _as_float(self.max_wait_ms, f"{prefix}.max_wait_ms", minimum=0.0)
        _as_int(self.queue_size, f"{prefix}.queue_size", minimum=1)
        _as_int(self.max_rows_per_request, f"{prefix}.max_rows_per_request", minimum=1)
        return self


@dataclass(frozen=True, eq=True)
class RolloutSpec:
    """Hot-swap rollout drill riding on the load harness (DESIGN.md §13).

    When ``enabled``, the scenario runner boots a ``workers``-process
    :class:`~repro.serve.pool.ServePool`, mounts a ``candidate_seed``
    re-fit of the same pipeline as a shadow/A-B candidate, drives the
    scenario's closed-loop traffic, and hot-swaps the primary artifact
    after ``swap_after_fraction`` of the requests — asserting zero
    dropped requests and recording the swap settle point in BENCH.
    """

    enabled: bool = False
    workers: int = 2
    swap_after_fraction: float = 0.5
    candidate_seed: int = 101
    mode: str = "shadow"
    ab_fraction: float = 0.5

    def validate(self, prefix: str = "rollout") -> "RolloutSpec":
        _require(
            isinstance(self.enabled, bool),
            f"{prefix}.enabled",
            f"expected a boolean, got {type(self.enabled).__name__}",
        )
        _as_int(self.workers, f"{prefix}.workers", minimum=1)
        frac = _as_float(self.swap_after_fraction, f"{prefix}.swap_after_fraction", minimum=0.0)
        _require(frac < 1.0, f"{prefix}.swap_after_fraction", f"must be < 1, got {frac}")
        _as_int(self.candidate_seed, f"{prefix}.candidate_seed", minimum=0)
        _as_str(self.mode, f"{prefix}.mode", choices=("shadow", "ab"))
        ab = _as_float(self.ab_fraction, f"{prefix}.ab_fraction")
        _require(0.0 < ab <= 1.0, f"{prefix}.ab_fraction", f"must be in (0, 1], got {ab}")
        return self


@dataclass(frozen=True, eq=True)
class ScenarioSpec:
    """One complete scenario: everything a run needs, nothing ambient.

    ``fast`` is an optional partial override tree (same shape as the
    scenario document) applied by :func:`apply_preset` — CI and the test
    suite run every scenario through its fast preset so an end-to-end
    run stays in the seconds range.
    """

    name: str
    description: str = ""
    dataset: DatasetSpec = field(default_factory=DatasetSpec)
    encoder: EncoderSpec = field(default_factory=EncoderSpec)
    model: ModelSpec = field(default_factory=ModelSpec)
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    slo: SLOSpec = field(default_factory=SLOSpec)
    serve: ServeSpec = field(default_factory=ServeSpec)
    rollout: RolloutSpec = field(default_factory=RolloutSpec)
    fast: Optional[Mapping[str, Any]] = None

    def validate(self) -> "ScenarioSpec":
        _as_str(self.name, "name")
        _require(self.name != "", "name", "must not be empty")
        _require(
            all(ch.isalnum() or ch in "-_" for ch in self.name),
            "name",
            f"must be alphanumeric/dash/underscore (used in BENCH_<name>.json), got {self.name!r}",
        )
        _as_str(self.description, "description")
        self.dataset.validate()
        self.encoder.validate()
        self.model.validate()
        self.traffic.validate()
        self.slo.validate()
        self.serve.validate()
        self.rollout.validate()
        if self.fast is not None:
            overrides = _as_section(self.fast, "fast")
            _no_unknown_keys(
                overrides,
                (
                    "description",
                    "dataset",
                    "encoder",
                    "model",
                    "traffic",
                    "slo",
                    "serve",
                    "rollout",
                ),
                "fast",
            )
        return self


_SECTION_TYPES = {
    "dataset": DatasetSpec,
    "encoder": EncoderSpec,
    "model": ModelSpec,
    "traffic": TrafficSpec,
    "slo": SLOSpec,
    "serve": ServeSpec,
    "rollout": RolloutSpec,
}


# ----------------------------------------------------------------------
# dict <-> spec
# ----------------------------------------------------------------------
def _section_from_dict(cls, data: Any, prefix: str):
    data = _as_section(data, prefix)
    names = tuple(f.name for f in fields(cls))
    _no_unknown_keys(data, names, prefix)
    return cls(**data).validate(prefix)


def scenario_from_dict(data: Mapping[str, Any]) -> ScenarioSpec:
    """Parse + validate a scenario document; strict about unknown keys."""
    data = _as_section(data, "scenario")
    allowed = ("schema_version", "name") + tuple(_SECTION_TYPES) + ("description", "fast")
    _no_unknown_keys(data, allowed, "")
    version = data.get("schema_version", SCENARIO_SCHEMA_VERSION)
    _as_int(version, "schema_version", minimum=1)
    _require(
        version <= SCENARIO_SCHEMA_VERSION,
        "schema_version",
        f"scenario schema v{version} is newer than this build supports "
        f"(v{SCENARIO_SCHEMA_VERSION})",
    )
    _require("name" in data, "name", "required key is missing")
    kwargs: Dict[str, Any] = {
        "name": data["name"],
        "description": data.get("description", ""),
    }
    for section, cls in _SECTION_TYPES.items():
        if section in data:
            kwargs[section] = _section_from_dict(cls, data[section], section)
    if data.get("fast") is not None:
        kwargs["fast"] = _as_section(data["fast"], "fast")
    return ScenarioSpec(**kwargs).validate()


def scenario_to_dict(spec: ScenarioSpec) -> Dict[str, Any]:
    """Canonical full-document form; inverse of :func:`scenario_from_dict`."""
    out: Dict[str, Any] = {
        "schema_version": SCENARIO_SCHEMA_VERSION,
        "name": spec.name,
        "description": spec.description,
    }
    for section, cls in _SECTION_TYPES.items():
        value = getattr(spec, section)
        out[section] = {f.name: getattr(value, f.name) for f in fields(cls)}
        # Mappings (model/dataset params) are copied so the document is
        # independent of the spec object.
        for k, v in list(out[section].items()):
            if isinstance(v, Mapping):
                out[section][k] = dict(v)
    out["fast"] = dict(spec.fast) if spec.fast is not None else None
    return out


# ----------------------------------------------------------------------
# presets
# ----------------------------------------------------------------------
def _deep_merge(base: Dict[str, Any], overrides: Mapping[str, Any]) -> Dict[str, Any]:
    merged = dict(base)
    for k, v in overrides.items():
        if isinstance(v, Mapping) and isinstance(merged.get(k), Mapping):
            merged[k] = _deep_merge(dict(merged[k]), v)
        else:
            merged[k] = v
    return merged


def apply_preset(spec: ScenarioSpec, preset: Optional[str]) -> ScenarioSpec:
    """Return the spec with a named preset applied (``None`` = unchanged).

    Only ``"fast"`` is defined; it deep-merges the spec's ``fast``
    override tree into the document and re-validates, so a preset can
    never produce an invalid spec silently.
    """
    if preset is None:
        return spec
    if preset != "fast":
        raise ScenarioError(f"unknown preset {preset!r} (only 'fast' is defined)", key="preset")
    if spec.fast is None:
        return spec
    doc = scenario_to_dict(spec)
    overrides = doc.pop("fast") or {}
    doc["fast"] = None
    return scenario_from_dict(_deep_merge(doc, overrides))


# ----------------------------------------------------------------------
# files
# ----------------------------------------------------------------------
def load_scenario(path: Union[str, Path]) -> ScenarioSpec:
    """Load one scenario from a ``.json`` or ``.toml`` file."""
    path = Path(path)
    if not path.is_file():
        raise ScenarioError(f"scenario file not found: {path}")
    suffix = path.suffix.lower()
    if suffix == ".json":
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"{path} is not valid JSON: {exc}") from exc
    elif suffix == ".toml":
        try:
            import tomllib
        except ImportError as exc:  # Python 3.10: tomllib landed in 3.11
            raise ScenarioError(
                f"{path}: TOML scenarios need Python 3.11+ (stdlib tomllib); "
                f"use the JSON form on this interpreter"
            ) from exc
        try:
            data = tomllib.loads(path.read_text(encoding="utf-8"))
        except tomllib.TOMLDecodeError as exc:
            raise ScenarioError(f"{path} is not valid TOML: {exc}") from exc
    else:
        raise ScenarioError(f"{path}: unsupported scenario suffix {suffix!r} (.json or .toml)")
    try:
        return scenario_from_dict(data)
    except ScenarioError as exc:
        raise ScenarioError(f"{path}: {exc}", key=exc.key) from exc


def discover_scenarios(directory: Union[str, Path]) -> Dict[str, Path]:
    """Map scenario *file stem* -> path for every scenario file in a dir.

    The stem is the lookup name for ``repro-scenarios run <name>``; the
    spec's ``name`` field must match it (checked at load time by the
    CLI) so a BENCH file is always attributable to its source file.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ScenarioError(f"scenario directory not found: {directory}")
    out: Dict[str, Path] = {}
    for path in sorted(directory.iterdir()):
        if path.suffix.lower() not in (".json", ".toml") or not path.is_file():
            continue
        if path.stem in out:
            raise ScenarioError(
                f"duplicate scenario name {path.stem!r}: {out[path.stem].name} and {path.name}"
            )
        out[path.stem] = path
    return out


__all__ = [
    "DATASET_SOURCES",
    "MODEL_KINDS",
    "SCENARIO_SCHEMA_VERSION",
    "TRAFFIC_MODES",
    "DatasetSpec",
    "EncoderSpec",
    "ModelSpec",
    "RolloutSpec",
    "SLOSpec",
    "ScenarioSpec",
    "ServeSpec",
    "TrafficSpec",
    "apply_preset",
    "discover_scenarios",
    "load_scenario",
    "scenario_from_dict",
    "scenario_to_dict",
]
