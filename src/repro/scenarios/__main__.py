"""``python -m repro.scenarios`` — alias for the ``repro-scenarios`` CLI."""

from repro.scenarios.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
