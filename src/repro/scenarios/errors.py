"""Typed errors for the scenario library.

Every validation failure names the offending key with a dotted path
(``"traffic.rate_rps"``), so a scenario author editing a JSON/TOML file
is pointed at the exact field to fix — and the property-based tests can
assert that malformed input is rejected *and* attributed correctly.
"""

from __future__ import annotations

from typing import Optional


class ScenarioError(ValueError):
    """A scenario definition (or bench report) failed validation.

    Attributes
    ----------
    key:
        Dotted path of the offending field (``"slo.p95_ms"``), or
        ``None`` for document-level problems (unreadable file, wrong
        top-level type).
    """

    def __init__(self, message: str, *, key: Optional[str] = None) -> None:
        self.key = key
        super().__init__(f"{key}: {message}" if key else message)


class BenchSchemaError(ScenarioError):
    """A ``BENCH_*.json`` document does not match the bench schema."""


__all__ = ["BenchSchemaError", "ScenarioError"]
