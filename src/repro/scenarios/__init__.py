"""repro.scenarios — declarative workload scenarios + synthetic load harness.

A scenario file (``scenarios/*.json`` / ``*.toml``) declares dataset,
encoder, model, traffic shape, and SLO; this package resolves it into an
offline experiment, a persisted model artifact, a live server, and a
seeded load run whose report accumulates in a schema-versioned
``BENCH_<scenario>.json`` trajectory.  See DESIGN.md §10.
"""

from repro.scenarios.errors import BenchSchemaError, ScenarioError
from repro.scenarios.load import (
    FakeClock,
    FakeTransport,
    HttpTransport,
    LoadReport,
    SystemClock,
    arrival_schedule,
    evaluate_slo,
    find_saturation,
    run_load,
    summarize,
)
from repro.scenarios.report import (
    BENCH_SCHEMA_VERSION,
    bench_path,
    load_bench,
    make_run_entry,
    merge_bench,
    new_bench,
    update_bench_file,
    validate_bench,
    write_bench,
)
from repro.scenarios.resolve import (
    boot_server,
    build_artifact,
    build_dataset,
    build_pipeline,
    run_offline,
)
from repro.scenarios.rollout import run_rollout
from repro.scenarios.runner import run_scenario
from repro.scenarios.sweep import (
    WorkerScalingReport,
    artifact_pool_factory,
    check_scaling,
    measure_service_time,
    simulate_pool,
    sweep_workers,
)
from repro.scenarios.schema import (
    SCENARIO_SCHEMA_VERSION,
    DatasetSpec,
    EncoderSpec,
    ModelSpec,
    RolloutSpec,
    ScenarioSpec,
    ServeSpec,
    SLOSpec,
    TrafficSpec,
    apply_preset,
    discover_scenarios,
    load_scenario,
    scenario_from_dict,
    scenario_to_dict,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "SCENARIO_SCHEMA_VERSION",
    "BenchSchemaError",
    "DatasetSpec",
    "EncoderSpec",
    "FakeClock",
    "FakeTransport",
    "HttpTransport",
    "LoadReport",
    "ModelSpec",
    "RolloutSpec",
    "SLOSpec",
    "ScenarioError",
    "ScenarioSpec",
    "ServeSpec",
    "SystemClock",
    "TrafficSpec",
    "WorkerScalingReport",
    "apply_preset",
    "arrival_schedule",
    "artifact_pool_factory",
    "bench_path",
    "boot_server",
    "build_artifact",
    "build_dataset",
    "build_pipeline",
    "check_scaling",
    "discover_scenarios",
    "evaluate_slo",
    "find_saturation",
    "load_bench",
    "load_scenario",
    "make_run_entry",
    "measure_service_time",
    "merge_bench",
    "new_bench",
    "run_load",
    "run_offline",
    "run_rollout",
    "run_scenario",
    "scenario_from_dict",
    "scenario_to_dict",
    "simulate_pool",
    "summarize",
    "sweep_workers",
    "update_bench_file",
    "validate_bench",
    "write_bench",
]
