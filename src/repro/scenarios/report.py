"""BENCH_*.json: the repository's persisted performance trajectory.

Every scenario run appends one *run entry* to ``BENCH_<scenario>.json``.
The file is schema-versioned and merged across runs, so committing a
blessed copy turns one-off benchmark numbers into a trackable series —
a regression shows up as a diff, not as folklore about what the numbers
used to be.

Document shape (``BENCH_SCHEMA_VERSION = 1``)::

    {
      "bench_schema_version": 1,
      "scenario": "pima_r",
      "runs": [
        {
          "timestamp": "2026-08-07T12:00:00+00:00",
          "repro_version": "1.0.0",
          "preset": "fast" | null,
          "config": { ...scenario document the run used... },
          "load": { ...LoadReport.to_dict()... },
          "offline": {...} | null,
          "server_metrics": {"serve.requests": ..., ...} | null,
          "saturation": {...} | null,
          "sweep": { ...WorkerScalingReport.to_dict()... } | null,
          "rollout": { ...swap-under-load drill block... } | null
        },
        ...
      ]
    }

Validation raises :class:`~repro.scenarios.errors.BenchSchemaError`
naming the offending key, same contract as the scenario schema.
"""

from __future__ import annotations

import json
import os
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from repro.scenarios.errors import BenchSchemaError
from repro.scenarios.load import LoadReport
from repro.scenarios.schema import ScenarioSpec, scenario_to_dict

BENCH_SCHEMA_VERSION = 1

#: serve.* counters snapshotted into each run entry (server-side view).
SERVER_COUNTERS = (
    "serve.requests",
    "serve.rows",
    "serve.batches",
    "serve.rejected",
    "serve.errors",
)


def bench_filename(scenario_name: str) -> str:
    return f"BENCH_{scenario_name}.json"


def bench_path(out_dir: Union[str, Path], scenario_name: str) -> Path:
    return Path(out_dir) / bench_filename(scenario_name)


def _utc_now_iso() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def snapshot_server_counters() -> Dict[str, float]:
    """Current serve.* counter values from the process-local registry.

    Meaningful when the harness boots the server in-process (the CLI
    path); callers diff two snapshots to attribute counts to one run.
    """
    from repro.obs.metrics import REGISTRY

    out: Dict[str, float] = {}
    for name in SERVER_COUNTERS:
        metric = REGISTRY.get(name)
        out[name] = float(getattr(metric, "value", 0.0)) if metric is not None else 0.0
    return out


def diff_server_counters(
    before: Mapping[str, float], after: Mapping[str, float]
) -> Dict[str, float]:
    return {name: float(after.get(name, 0.0)) - float(before.get(name, 0.0)) for name in SERVER_COUNTERS}


def make_run_entry(
    spec: ScenarioSpec,
    load_report: LoadReport,
    *,
    preset: Optional[str] = None,
    offline: Optional[Mapping[str, Any]] = None,
    server_metrics: Optional[Mapping[str, float]] = None,
    saturation: Optional[Mapping[str, Any]] = None,
    sweep: Optional[Mapping[str, Any]] = None,
    rollout: Optional[Mapping[str, Any]] = None,
    timestamp: Optional[str] = None,
) -> Dict[str, Any]:
    """One trajectory point: the config that ran and what it measured."""
    from repro import __version__

    return {
        "timestamp": timestamp or _utc_now_iso(),
        "repro_version": __version__,
        "preset": preset,
        "config": scenario_to_dict(spec),
        "load": load_report.to_dict(),
        "offline": dict(offline) if offline is not None else None,
        "server_metrics": dict(server_metrics) if server_metrics is not None else None,
        "saturation": dict(saturation) if saturation is not None else None,
        "sweep": dict(sweep) if sweep is not None else None,
        "rollout": dict(rollout) if rollout is not None else None,
    }


def new_bench(scenario_name: str) -> Dict[str, Any]:
    return {
        "bench_schema_version": BENCH_SCHEMA_VERSION,
        "scenario": scenario_name,
        "runs": [],
    }


def merge_bench(doc: Dict[str, Any], entry: Mapping[str, Any]) -> Dict[str, Any]:
    """Append a run entry; runs stay ordered by timestamp (stable)."""
    validate_bench(doc)
    merged = dict(doc)
    runs = list(doc["runs"]) + [dict(entry)]
    runs.sort(key=lambda r: str(r.get("timestamp", "")))
    merged["runs"] = runs
    validate_bench(merged)
    return merged


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------
def _require(cond: bool, key: str, message: str) -> None:
    if not cond:
        raise BenchSchemaError(message, key=key)


def _check_number(value: Any, key: str, *, optional: bool = False) -> None:
    if optional and value is None:
        return
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        key,
        f"expected a number, got {type(value).__name__}",
    )


def _validate_load_section(load: Any, prefix: str) -> None:
    _require(isinstance(load, Mapping), prefix, "expected an object")
    for k in ("mode", "n_requests", "duration_s", "throughput_rps", "error_rate"):
        _require(k in load, f"{prefix}.{k}", "required key is missing")
    _require(load["mode"] in ("open", "closed"), f"{prefix}.mode", f"bad mode {load['mode']!r}")
    _check_number(load["n_requests"], f"{prefix}.n_requests")
    _check_number(load["duration_s"], f"{prefix}.duration_s")
    _check_number(load["throughput_rps"], f"{prefix}.throughput_rps")
    _check_number(load["error_rate"], f"{prefix}.error_rate")
    lat = load.get("latency_ms")
    _require(isinstance(lat, Mapping), f"{prefix}.latency_ms", "expected an object")
    for pct in ("p50", "p95", "p99"):
        _require(pct in lat, f"{prefix}.latency_ms.{pct}", "required key is missing")
        _check_number(lat[pct], f"{prefix}.latency_ms.{pct}")
    counts = load.get("status_counts")
    _require(isinstance(counts, Mapping), f"{prefix}.status_counts", "expected an object")
    for status, n in counts.items():
        _require(
            isinstance(status, str) and status.lstrip("-").isdigit(),
            f"{prefix}.status_counts.{status}",
            "status keys must be stringified integers",
        )
        _check_number(n, f"{prefix}.status_counts.{status}")


def validate_bench(doc: Any) -> None:
    """Validate a BENCH document; raises :class:`BenchSchemaError`."""
    _require(isinstance(doc, Mapping), "", "BENCH document must be a JSON object")
    _require("bench_schema_version" in doc, "bench_schema_version", "required key is missing")
    version = doc["bench_schema_version"]
    _require(
        isinstance(version, int) and not isinstance(version, bool),
        "bench_schema_version",
        f"expected an integer, got {type(version).__name__}",
    )
    _require(
        1 <= version <= BENCH_SCHEMA_VERSION,
        "bench_schema_version",
        f"unsupported version {version} (this build reads <= {BENCH_SCHEMA_VERSION})",
    )
    _require(
        isinstance(doc.get("scenario"), str) and doc["scenario"],
        "scenario",
        "expected a non-empty string",
    )
    runs = doc.get("runs")
    _require(isinstance(runs, list), "runs", "expected a list")
    for i, run in enumerate(runs):
        prefix = f"runs[{i}]"
        _require(isinstance(run, Mapping), prefix, "expected an object")
        _require(
            isinstance(run.get("timestamp"), str) and run["timestamp"],
            f"{prefix}.timestamp",
            "expected a non-empty string",
        )
        _require(
            isinstance(run.get("repro_version"), str),
            f"{prefix}.repro_version",
            "expected a string",
        )
        preset = run.get("preset")
        _require(
            preset is None or isinstance(preset, str),
            f"{prefix}.preset",
            "expected a string or null",
        )
        _require(isinstance(run.get("config"), Mapping), f"{prefix}.config", "expected an object")
        _validate_load_section(run.get("load"), f"{prefix}.load")
        for optional_section in (
            "offline",
            "server_metrics",
            "saturation",
            "sweep",
            "rollout",
        ):
            value = run.get(optional_section)
            _require(
                value is None or isinstance(value, Mapping),
                f"{prefix}.{optional_section}",
                "expected an object or null",
            )


# ----------------------------------------------------------------------
# files
# ----------------------------------------------------------------------
def load_bench(path: Union[str, Path]) -> Dict[str, Any]:
    path = Path(path)
    if not path.is_file():
        raise BenchSchemaError(f"bench file not found: {path}")
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BenchSchemaError(f"{path} is not valid JSON: {exc}") from exc
    validate_bench(doc)
    return doc


def write_bench(path: Union[str, Path], doc: Mapping[str, Any]) -> Path:
    """Validate and atomically write a BENCH document."""
    validate_bench(doc)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(doc, indent=2, sort_keys=False) + "\n", encoding="utf-8")
    os.replace(tmp, path)
    return path


def update_bench_file(
    path: Union[str, Path], scenario_name: str, entry: Mapping[str, Any]
) -> Dict[str, Any]:
    """Merge a run entry into the trajectory file (created if missing)."""
    path = Path(path)
    if path.is_file():
        doc = load_bench(path)
        if doc["scenario"] != scenario_name:
            raise BenchSchemaError(
                f"{path} tracks scenario {doc['scenario']!r}, refusing to append "
                f"a {scenario_name!r} run",
                key="scenario",
            )
    else:
        doc = new_bench(scenario_name)
    doc = merge_bench(doc, entry)
    write_bench(path, doc)
    return doc


__all__ = [
    "BENCH_SCHEMA_VERSION",
    "SERVER_COUNTERS",
    "bench_filename",
    "bench_path",
    "diff_server_counters",
    "load_bench",
    "make_run_entry",
    "merge_bench",
    "new_bench",
    "snapshot_server_counters",
    "update_bench_file",
    "validate_bench",
]
