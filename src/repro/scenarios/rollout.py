"""Swap-under-load rollout drill: hot-swap a live pool mid-traffic.

:func:`run_rollout` is the scenario-level proof of the DESIGN.md §13
lifecycle claims: it boots a multi-worker
:class:`~repro.serve.pool.ServePool`, mounts a re-seeded candidate of
the same scenario pipeline (shadow or A/B per the spec), drives the
scenario's closed-loop traffic at the pool, and fires
``POST /v1/admin/reload`` once a configured fraction of the requests
has completed — while traffic keeps flowing.

The harness records what the lifecycle machinery promises:

* **zero dropped requests** — every request gets an HTTP response;
  transport-level failures would show up as status ``0`` and 5xx as
  themselves in ``status_counts``;
* **swap settle** — each ``/v1/predict`` envelope names the
  ``artifact_sha`` that served it, so the result stream shows exactly
  when each worker crossed from the old generation to the new one
  (bounded by the workers' deploy-poll tick);
* **lifecycle metrics** — the pool-wide ``/metrics`` view after the run
  (``repro_lifecycle_*`` series plus the worker-restart counter).

The block this returns is persisted as the optional ``rollout`` section
of a BENCH run entry (see :mod:`repro.scenarios.report`).
"""

from __future__ import annotations

import dataclasses
import json
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs import span
from repro.persist import artifact_sha
from repro.scenarios.errors import ScenarioError
from repro.scenarios.resolve import build_artifact, build_dataset, serve_config
from repro.scenarios.schema import ScenarioSpec
from repro.serve.pool import FLUSH_PERIOD_S, ServePool

#: How long the harness waits for candidate mount / swap convergence.
SETTLE_TIMEOUT_S = 15.0
#: Consecutive confirming responses (per worker) before a state is
#: considered propagated — the kernel balances connections randomly, so
#: one confirmation only proves one worker.
CONFIRMS_PER_WORKER = 3


# ----------------------------------------------------------------------
# minimal HTTP helpers (the load generator's transport speaks the legacy
# /predict endpoint; the drill needs the /v1 envelope's artifact_sha)
# ----------------------------------------------------------------------
def _request_json(
    url: str,
    payload: Optional[dict],
    *,
    timeout_s: float,
) -> Tuple[int, dict]:
    """POST (or GET when ``payload`` is None); ``(status, body_dict)``.

    Transport-level failures return status ``0`` — the "dropped request"
    bucket the drill asserts stays empty.
    """
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    req = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout_s) as resp:
            return int(resp.status), json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        try:
            body = json.loads(exc.read().decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            body = {}
        return int(exc.code), body
    except (urllib.error.URLError, OSError, TimeoutError, ValueError):
        return 0, {}


def _await_sha(
    base_url: str,
    expect_sha: str,
    row: List[float],
    *,
    confirms: int,
    timeout_s: float,
) -> bool:
    """Probe ``/v1/predict`` until ``confirms`` consecutive responses
    carry ``expect_sha`` (i.e. every worker serves the new generation)."""
    deadline = time.monotonic() + timeout_s
    streak = 0
    while time.monotonic() < deadline:
        status, body = _request_json(
            f"{base_url}/v1/predict", {"rows": [row]}, timeout_s=timeout_s
        )
        sha = body.get("model", {}).get("artifact_sha") if status == 200 else None
        streak = streak + 1 if sha == expect_sha else 0
        if streak >= confirms:
            return True
        time.sleep(0.02)
    return False


def _await_candidate(base_url: str, *, confirms: int, timeout_s: float) -> bool:
    """Poll the lifecycle endpoint until every worker mounted the candidate."""
    deadline = time.monotonic() + timeout_s
    streak = 0
    while time.monotonic() < deadline:
        status, body = _request_json(
            f"{base_url}/v1/admin/lifecycle", None, timeout_s=timeout_s
        )
        mounted = status == 200 and body.get("candidate") is not None
        streak = streak + 1 if mounted else 0
        if streak >= confirms:
            return True
        time.sleep(0.05)
    return False


def _scrape_lifecycle_metrics(base_url: str, *, timeout_s: float) -> Dict[str, float]:
    """Unlabelled ``repro_lifecycle_*`` / worker-restart series from /metrics."""
    req = urllib.request.Request(f"{base_url}/metrics")
    try:
        with urllib.request.urlopen(req, timeout=timeout_s) as resp:
            text = resp.read().decode("utf-8")
    except (urllib.error.URLError, OSError, TimeoutError):
        return {}
    out: Dict[str, float] = {}
    for line in text.splitlines():
        if line.startswith("#") or " " not in line:
            continue
        name, _, value = line.partition(" ")
        if "{" in name:  # histogram buckets / labelled info series
            continue
        if name.startswith("repro_lifecycle_") or name == "repro_serve_worker_restarts_total":
            try:
                out[name] = float(value)
            except ValueError:
                continue
    return out


# ----------------------------------------------------------------------
# the drill
# ----------------------------------------------------------------------
def _drive_traffic(
    base_url: str,
    rows: Any,
    *,
    n_requests: int,
    concurrency: int,
    swap_after: int,
    swap_artifact: str,
    timeout_s: float,
) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    """Closed-loop traffic with a one-shot mid-run hot-swap.

    ``concurrency`` workers each keep one request in flight; the worker
    whose completion crosses ``swap_after`` fires the reload inline (the
    other workers keep hammering the pool during the swap — that is the
    point of the drill).  Results carry the completion sequence number,
    status and the serving ``artifact_sha``.
    """
    lock = threading.Lock()
    results: List[Dict[str, Any]] = []
    swap: Dict[str, Any] = {"fired": False}
    next_index = [0]

    def fire_swap() -> None:
        started = time.monotonic()
        status, body = _request_json(
            f"{base_url}/v1/admin/reload",
            {"artifact": swap_artifact},
            timeout_s=timeout_s,
        )
        with lock:
            swap["reload_status"] = status
            swap["reload_s"] = time.monotonic() - started
            swap["generation"] = body.get("generation")

    def worker() -> None:
        while True:
            with lock:
                if next_index[0] >= n_requests:
                    return
                i = next_index[0]
                next_index[0] += 1
            row = [float(v) for v in rows[i % len(rows)]]
            status, body = _request_json(
                f"{base_url}/v1/predict", {"rows": [row]}, timeout_s=timeout_s
            )
            sha = body.get("model", {}).get("artifact_sha") if status == 200 else None
            fire = False
            with lock:
                seq = len(results)
                results.append(
                    {"seq": seq, "status": status, "artifact_sha": sha}
                )
                if not swap["fired"] and seq + 1 >= swap_after:
                    swap["fired"] = True
                    swap["fired_after"] = seq + 1
                    fire = True
            if fire:
                fire_swap()

    threads = [
        threading.Thread(target=worker, name=f"repro-rollout-{i}", daemon=True)
        for i in range(concurrency)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results, swap


def _summarise(
    results: List[Dict[str, Any]],
    swap: Dict[str, Any],
    *,
    old_sha: str,
    new_sha: str,
    converged: bool,
) -> Dict[str, Any]:
    status_counts: Dict[str, int] = {}
    for r in results:
        key = str(r["status"])
        status_counts[key] = status_counts.get(key, 0) + 1
    old_seqs = [r["seq"] for r in results if r["artifact_sha"] == old_sha]
    new_seqs = [r["seq"] for r in results if r["artifact_sha"] == new_sha]
    return {
        "n_requests": len(results),
        "n_errors": sum(1 for r in results if r["status"] != 200),
        "n_dropped": status_counts.get("0", 0),
        "n_5xx": sum(
            n for status, n in status_counts.items() if status.startswith("5")
        ),
        "status_counts": status_counts,
        "swap": {
            "old_sha": old_sha,
            "new_sha": new_sha,
            "fired_after": swap.get("fired_after"),
            "reload_status": swap.get("reload_status"),
            "reload_s": swap.get("reload_s"),
            "generation": swap.get("generation"),
            "old_responses": len(old_seqs),
            "new_responses": len(new_seqs),
            "first_new_seq": min(new_seqs) if new_seqs else None,
            "last_old_seq": max(old_seqs) if old_seqs else None,
            "converged": bool(converged),
        },
    }


def run_rollout(
    spec: ScenarioSpec,
    *,
    artifact_dir: Union[str, Path, None] = None,
) -> Dict[str, Any]:
    """Run the scenario's swap-under-load drill; returns the BENCH block.

    Requires ``spec.rollout.enabled``; the primary artifact is the
    scenario pipeline, the candidate/new-generation artifact is the same
    scenario re-fit with ``rollout.candidate_seed`` (different basis
    hypervectors, hence a different ``artifact_sha`` — distinguishable
    in every response envelope).
    """
    spec = spec.validate()
    rollout = spec.rollout
    if not rollout.enabled:
        raise ScenarioError("rollout drill is not enabled for this scenario", key="rollout.enabled")
    timeout_s = spec.traffic.timeout_s
    confirms = rollout.workers * CONFIRMS_PER_WORKER
    dataset = build_dataset(spec)
    with span(
        "scenarios.rollout",
        scenario=spec.name,
        workers=rollout.workers,
        mode=rollout.mode,
    ):
        with tempfile.TemporaryDirectory(prefix="repro-rollout-") as tmp:
            base = Path(artifact_dir) if artifact_dir is not None else Path(tmp)
            primary = build_artifact(spec, base / "primary", dataset)
            candidate_spec = dataclasses.replace(
                spec,
                encoder=dataclasses.replace(
                    spec.encoder, seed=rollout.candidate_seed
                ),
            )
            candidate = build_artifact(candidate_spec, base / "candidate", dataset)
            old_sha = artifact_sha(primary)
            new_sha = artifact_sha(candidate)
            config = dataclasses.replace(serve_config(spec), workers=rollout.workers)
            pool = ServePool(str(primary), config)
            pool.start()
            try:
                base_url = pool.url
                mount_status, _ = _request_json(
                    f"{base_url}/v1/admin/candidate",
                    {
                        "action": "mount",
                        "artifact": str(candidate),
                        "mode": rollout.mode,
                        "fraction": rollout.ab_fraction,
                    },
                    timeout_s=timeout_s,
                )
                candidate_mounted = mount_status == 200 and _await_candidate(
                    base_url, confirms=confirms, timeout_s=SETTLE_TIMEOUT_S
                )
                n_requests = spec.traffic.n_requests
                swap_after = max(1, int(n_requests * rollout.swap_after_fraction))
                started = time.monotonic()
                results, swap = _drive_traffic(
                    base_url,
                    dataset.X,
                    n_requests=n_requests,
                    concurrency=spec.traffic.concurrency,
                    swap_after=swap_after,
                    swap_artifact=str(candidate),
                    timeout_s=timeout_s,
                )
                duration_s = time.monotonic() - started
                # The deploy record reaches the slowest worker within one
                # flush tick; after that every envelope must carry the
                # new generation's sha.
                converged = _await_sha(
                    base_url,
                    new_sha,
                    [float(v) for v in dataset.X[0]],
                    confirms=confirms,
                    timeout_s=max(SETTLE_TIMEOUT_S, 4 * FLUSH_PERIOD_S),
                )
                # Worker registries flush into the merged scrape on the
                # pool's snapshot tick; poll a few ticks so shadow/drift
                # series recorded at the tail of the drive are visible.
                deadline = time.monotonic() + max(
                    SETTLE_TIMEOUT_S, 4 * FLUSH_PERIOD_S
                )
                metrics = _scrape_lifecycle_metrics(base_url, timeout_s=timeout_s)
                while (
                    metrics.get("repro_lifecycle_shadow_rows_total", 0.0) <= 0.0
                    and time.monotonic() < deadline
                ):
                    time.sleep(FLUSH_PERIOD_S / 2)
                    metrics = _scrape_lifecycle_metrics(
                        base_url, timeout_s=timeout_s
                    )
            finally:
                pool.stop()
    block = _summarise(
        results, swap, old_sha=old_sha, new_sha=new_sha, converged=converged
    )
    block.update(
        {
            "workers": rollout.workers,
            "mode": rollout.mode,
            "ab_fraction": rollout.ab_fraction,
            "candidate_mounted": bool(candidate_mounted),
            "duration_s": duration_s,
            "lifecycle_metrics": metrics,
        }
    )
    return block


__all__ = ["CONFIRMS_PER_WORKER", "SETTLE_TIMEOUT_S", "run_rollout"]
