"""End-to-end scenario execution: train → persist → serve → load → BENCH.

:func:`run_scenario` is the one call behind ``repro-scenarios run``:

1. resolve the spec (optionally through its ``fast`` preset);
2. fit the pipeline and persist it as a :mod:`repro.persist` artifact;
3. boot a :class:`~repro.serve.http.ModelServer` from that artifact on
   an ephemeral port — the served bytes are the saved bytes, so every
   run also exercises the artifact round-trip;
4. drive the scenario's traffic shape at it with the load generator;
5. fold the outcome (client-side report, server-side ``serve.*`` counter
   deltas, optional offline experiment + saturation sweep + swap-under-
   load rollout drill) into a run entry and merge it into
   ``BENCH_<scenario>.json``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.obs import span
from repro.scenarios.load import HttpTransport, find_saturation, run_load
from repro.scenarios.report import (
    bench_path,
    diff_server_counters,
    make_run_entry,
    snapshot_server_counters,
    update_bench_file,
)
from repro.scenarios.resolve import boot_server, build_artifact, build_dataset, run_offline
from repro.scenarios.rollout import run_rollout
from repro.scenarios.schema import ScenarioSpec, apply_preset


def run_scenario(
    spec: ScenarioSpec,
    *,
    preset: Optional[str] = None,
    out_dir: Union[str, Path, None] = None,
    artifact_dir: Union[str, Path, None] = None,
    offline: bool = False,
    saturation: bool = False,
    rollout: bool = False,
    write_bench: bool = True,
) -> Dict[str, Any]:
    """Run one scenario end-to-end; returns the BENCH run entry.

    Parameters
    ----------
    spec:
        The scenario to run (already loaded/validated).
    preset:
        ``"fast"`` applies the spec's fast overrides (CI/tests).
    out_dir:
        Directory for ``BENCH_<name>.json`` (default: CWD).  The file is
        merged, not overwritten — the trajectory accumulates.
    artifact_dir:
        Where to persist the model artifact; default is a temporary
        directory that lives only for the run.
    offline:
        Also run the scenario as an offline experiment (accuracy block).
    saturation:
        Also sweep open-loop rates to find the saturation point.
    rollout:
        Also run the swap-under-load drill
        (:func:`repro.scenarios.rollout.run_rollout`) — requires the
        spec's ``rollout.enabled``.
    write_bench:
        Set False to get the run entry without touching any file.
    """
    spec = apply_preset(spec.validate(), preset)
    with span("scenarios.run", scenario=spec.name, preset=preset or "full"):
        dataset = build_dataset(spec)
        offline_block = run_offline(spec, dataset) if offline else None

        with tempfile.TemporaryDirectory(prefix="repro-scenario-") as tmp:
            target = Path(artifact_dir) if artifact_dir is not None else Path(tmp) / "artifact"
            artifact = build_artifact(spec, target, dataset)
            server = boot_server(artifact, spec)
            try:
                before = snapshot_server_counters()
                transport = HttpTransport(server.url, timeout_s=spec.traffic.timeout_s)
                load_report = run_load(
                    spec.traffic,
                    transport,
                    slo=spec.slo,
                    rows=dataset.X,
                    workers="threads",
                )
                saturation_block = None
                if saturation:
                    saturation_block = find_saturation(
                        spec.traffic,
                        lambda: HttpTransport(server.url, timeout_s=spec.traffic.timeout_s),
                        slo=spec.slo,
                        rows=dataset.X,
                        start_rps=max(spec.traffic.rate_rps / 4.0, 1.0),
                    )
                server_metrics = diff_server_counters(before, snapshot_server_counters())
            finally:
                server.stop()

        # After the single-server run so the pool's forked workers never
        # share its port; own artifacts (primary + candidate generations).
        rollout_block = run_rollout(spec) if rollout else None

    entry = make_run_entry(
        spec,
        load_report,
        preset=preset,
        offline=offline_block,
        server_metrics=server_metrics,
        saturation=saturation_block,
        rollout=rollout_block,
    )
    if write_bench:
        path = bench_path(out_dir if out_dir is not None else Path.cwd(), spec.name)
        update_bench_file(path, spec.name, entry)
    return entry


__all__ = ["run_scenario"]
