"""Resolve a :class:`~repro.scenarios.schema.ScenarioSpec` into running parts.

One spec, three consumers:

* :func:`build_dataset` / :func:`build_pipeline` — the labelled
  population and the fitted :class:`~repro.ml.pipeline.HDCFeaturePipeline`
  the scenario describes (each dataset source exercises a different
  encoder path: Pima/Sylhet the linear level encoder, the EHR stream the
  longitudinal Pima marginals at scale, the binarized-image workload the
  binary seed/orthogonal pairs);
* :func:`run_offline` — the scenario as an *experiment*, through the
  :mod:`repro.eval` protocol stack (held-out classification report, plus
  the Hamming LOOCV number for the paper's native model);
* :func:`build_artifact` / :func:`boot_server` — the scenario as a
  *service*: persist via :mod:`repro.persist`, serve via
  :mod:`repro.serve`, ready for the load harness.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.core.classifier import HammingClassifier, PrototypeClassifier
from repro.core.records import RecordEncoder
from repro.data.datasets import Dataset
from repro.data.ehr import cohort_to_matrix, simulate_cohort
from repro.data.images import generate_binarized_images
from repro.data.pima import load_pima_m, load_pima_r, pima_feature_specs
from repro.data.sylhet import load_sylhet
from repro.eval.crossval import leave_one_out_hamming, train_test_split
from repro.eval.experiments import ExperimentConfig, encode_dataset, replace_levels
from repro.eval.metrics import classification_report
from repro.lifecycle import training_centroid
from repro.ml.linear import LogisticRegression
from repro.ml.pipeline import HDCFeaturePipeline
from repro.obs import span
from repro.persist import save_artifact
from repro.scenarios.errors import ScenarioError
from repro.scenarios.schema import ScenarioSpec
from repro.serve import ModelServer, ServeConfig
from repro.utils.rng import derive_seed


def build_dataset(spec: ScenarioSpec) -> Dataset:
    """Materialise the scenario's dataset (deterministic in its seeds)."""
    ds_spec = spec.dataset.validate()
    params = dict(ds_spec.params)
    with span("scenarios.build_dataset", source=ds_spec.source):
        if ds_spec.source == "pima_r":
            return load_pima_r(seed=ds_spec.seed)
        if ds_spec.source == "pima_m":
            return load_pima_m(seed=ds_spec.seed)
        if ds_spec.source == "sylhet":
            return load_sylhet(seed=ds_spec.seed)
        if ds_spec.source == "ehr":
            cohort = simulate_cohort(
                params.get("n_patients", 400),
                n_visits=params.get("n_visits", 6),
                seed=ds_spec.seed,
            )
            X, y, _, _ = cohort_to_matrix(cohort)
            specs = pima_feature_specs()
            return Dataset(
                name=f"ehr[{len(cohort)}x{params.get('n_visits', 6)}]",
                X=X,
                y=y,
                feature_names=[s.name for s in specs],
                specs=specs,
            )
        if ds_spec.source == "images":
            return generate_binarized_images(
                n_samples=params.get("n_samples", 600),
                side=params.get("side", 12),
                flip_prob=params.get("flip_prob", 0.05),
                seed=ds_spec.seed,
            )
    raise ScenarioError(f"unhandled source {ds_spec.source!r}", key="dataset.source")


def build_encoder(spec: ScenarioSpec, dataset: Dataset) -> RecordEncoder:
    """Unfitted record encoder configured from the scenario."""
    enc_spec = spec.encoder.validate()
    specs = list(dataset.specs)
    if enc_spec.levels is not None:
        specs = [replace_levels(s, enc_spec.levels) for s in specs]
    return RecordEncoder(
        specs=specs,
        dim=enc_spec.dim,
        seed=derive_seed(enc_spec.seed, "scenario-encode", spec.name),
        tie=enc_spec.tie,
    )


def build_model(spec: ScenarioSpec) -> Any:
    """Downstream classifier template for the scenario's model kind."""
    model = spec.model.validate()
    params = dict(model.params)
    if model.kind == "prototype":
        return PrototypeClassifier(dim=spec.encoder.dim, **params)
    if model.kind == "hamming":
        params.setdefault("n_neighbors", 1)
        return HammingClassifier(dim=spec.encoder.dim, **params)
    if model.kind == "logistic":
        return LogisticRegression(**params)
    raise ScenarioError(f"unhandled kind {model.kind!r}", key="model.kind")


def build_pipeline(
    spec: ScenarioSpec, dataset: Optional[Dataset] = None
) -> Tuple[HDCFeaturePipeline, Dataset]:
    """Fit the scenario's end-to-end pipeline on its full dataset."""
    dataset = dataset if dataset is not None else build_dataset(spec)
    pipeline = HDCFeaturePipeline(build_encoder(spec, dataset), build_model(spec))
    with span(
        "scenarios.fit_pipeline",
        scenario=spec.name,
        rows=dataset.n_samples,
        dim=spec.encoder.dim,
    ):
        pipeline.fit(dataset.X, dataset.y)
    return pipeline, dataset


def experiment_config(spec: ScenarioSpec) -> ExperimentConfig:
    """The scenario's view of the shared experiment knobs."""
    return replace(
        ExperimentConfig.fast(),
        dim=spec.encoder.dim,
        seed=spec.encoder.seed,
        data_seed=spec.dataset.seed,
    )


def run_offline(
    spec: ScenarioSpec,
    dataset: Optional[Dataset] = None,
    *,
    test_size: float = 0.2,
) -> Dict[str, Any]:
    """The scenario as an offline experiment (accuracy, not latency).

    Held-out classification report of the scenario pipeline, plus the
    Hamming LOOCV accuracy (the paper's Table II protocol, via
    :func:`repro.eval.experiments.encode_dataset` and the streaming
    search engine) when the scenario serves a native-Hamming model.
    """
    dataset = dataset if dataset is not None else build_dataset(spec)
    config = experiment_config(spec)
    idx = np.arange(dataset.n_samples)
    idx_tr, idx_te = train_test_split(
        idx,
        test_size=test_size,
        stratify=dataset.y,
        seed=derive_seed(spec.encoder.seed, "scenario-offline", spec.name),
    )
    pipeline = HDCFeaturePipeline(build_encoder(spec, dataset), build_model(spec))
    with span("scenarios.run_offline", scenario=spec.name, rows=dataset.n_samples):
        pipeline.fit(dataset.X[idx_tr], dataset.y[idx_tr])
        pred = pipeline.predict(dataset.X[idx_te])
        out: Dict[str, Any] = {
            "dataset": dataset.name,
            "n_samples": dataset.n_samples,
            "n_features": dataset.n_features,
            "test_size": float(test_size),
            "holdout": classification_report(dataset.y[idx_te], pred),
        }
        if spec.model.kind in ("prototype", "hamming"):
            packed, _, _ = encode_dataset(dataset, config)
            loo = leave_one_out_hamming(packed, dataset.y, n_jobs=config.loo_n_jobs)
            out["loo_hamming_accuracy"] = float(loo.accuracy)
    return out


def serve_config(spec: ScenarioSpec, *, host: str = "127.0.0.1", port: int = 0) -> ServeConfig:
    """Translate the scenario's serve section into a ServeConfig."""
    srv = spec.serve.validate()
    return ServeConfig(
        host=host,
        port=port,
        max_batch=srv.max_batch,
        max_wait_ms=srv.max_wait_ms,
        queue_size=srv.queue_size,
        max_rows_per_request=srv.max_rows_per_request,
    )


def build_artifact(
    spec: ScenarioSpec,
    path: Union[str, Path],
    dataset: Optional[Dataset] = None,
) -> Path:
    """Fit the scenario pipeline and persist it as a served-model artifact.

    The artifact carries a ``train_centroid`` extra — the packed majority
    hypervector of the training traffic — so a server loading it can arm
    the :class:`~repro.lifecycle.DriftMonitor` without the dataset.
    """
    pipeline, dataset = build_pipeline(spec, dataset)
    path = Path(path)
    save_artifact(
        pipeline,
        path,
        meta={
            "scenario": spec.name,
            "dataset": dataset.name,
            "dim": spec.encoder.dim,
            "model_kind": spec.model.kind,
        },
        extras={"train_centroid": training_centroid(pipeline.encoder_, dataset.X)},
    )
    return path


def boot_server(
    artifact: Union[str, Path],
    spec: ScenarioSpec,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
) -> ModelServer:
    """Load the artifact and return a started :class:`ModelServer`.

    ``port=0`` (default) binds an ephemeral port — the harness reads the
    real address from ``server.url``.  Caller owns shutdown
    (``with boot_server(...) as srv`` works: the server is re-entrant).
    """
    server = ModelServer.from_artifact(artifact, serve_config(spec, host=host, port=port))
    server.start()
    return server


__all__ = [
    "boot_server",
    "build_artifact",
    "build_dataset",
    "build_encoder",
    "build_model",
    "build_pipeline",
    "experiment_config",
    "run_offline",
    "serve_config",
]
