"""Command-line entry point: ``repro-scenarios`` / ``python -m repro.scenarios``.

Subcommands::

    repro-scenarios list   [--dir scenarios/]
    repro-scenarios show   <name> [--dir ...] [--preset fast]
    repro-scenarios run    <name> [--dir ...] [--preset fast] [--out .]
                           [--offline] [--saturation] [--rollout]
                           [--check-slo] [--artifact-dir DIR]
    repro-scenarios validate <path.json|path.toml|BENCH_*.json>

``run`` executes the scenario end-to-end (train → persist → serve on an
ephemeral port → synthetic load) and merges the result into
``BENCH_<name>.json`` under ``--out``.  Exit codes: 0 = success,
1 = SLO violated and ``--check-slo`` was given, 2 = bad arguments /
unknown scenario / invalid file.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.scenarios.errors import ScenarioError
from repro.scenarios.report import load_bench
from repro.scenarios.runner import run_scenario
from repro.scenarios.schema import (
    apply_preset,
    discover_scenarios,
    load_scenario,
    scenario_to_dict,
)

DEFAULT_DIR = "scenarios"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-scenarios",
        description="Run declarative workload scenarios and track BENCH_*.json trajectories.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_dir(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--dir", default=DEFAULT_DIR, metavar="DIR",
            help=f"scenario directory (default: ./{DEFAULT_DIR})",
        )

    p_list = sub.add_parser("list", help="list scenarios in the scenario directory")
    add_dir(p_list)

    p_show = sub.add_parser("show", help="print one scenario's resolved document")
    p_show.add_argument("name", help="scenario name (file stem)")
    p_show.add_argument("--preset", choices=["fast"], default=None)
    add_dir(p_show)

    p_run = sub.add_parser("run", help="run a scenario end-to-end and update its BENCH file")
    p_run.add_argument("name", help="scenario name (file stem)")
    p_run.add_argument("--preset", choices=["fast"], default=None)
    p_run.add_argument(
        "--out", default=".", metavar="DIR",
        help="directory for BENCH_<name>.json (default: current directory)",
    )
    p_run.add_argument(
        "--artifact-dir", default=None, metavar="DIR",
        help="persist the model artifact here (default: temp dir for the run)",
    )
    p_run.add_argument(
        "--offline", action="store_true",
        help="also run the scenario as an offline experiment (accuracy block)",
    )
    p_run.add_argument(
        "--saturation", action="store_true",
        help="also sweep open-loop rates for the saturation point",
    )
    p_run.add_argument(
        "--rollout", action="store_true",
        help="also run the swap-under-load rollout drill (needs rollout.enabled)",
    )
    p_run.add_argument(
        "--check-slo", action="store_true",
        help="exit 1 if the load report violates the scenario's SLO",
    )
    add_dir(p_run)

    p_val = sub.add_parser(
        "validate", help="validate a scenario file or a BENCH_*.json trajectory"
    )
    p_val.add_argument("path", help="path to a .json/.toml scenario or a BENCH_*.json file")
    return parser


def _resolve_scenario(directory: str, name: str):
    paths = discover_scenarios(directory)
    if name not in paths:
        raise ScenarioError(
            f"unknown scenario {name!r}; {directory} has: {', '.join(sorted(paths)) or '(none)'}"
        )
    spec = load_scenario(paths[name])
    if spec.name != name:
        raise ScenarioError(
            f"{paths[name]}: spec name {spec.name!r} does not match file stem {name!r}",
            key="name",
        )
    return spec


def _cmd_list(args: argparse.Namespace) -> int:
    paths = discover_scenarios(args.dir)
    if not paths:
        print(f"(no scenarios in {args.dir})")
        return 0
    for name, path in sorted(paths.items()):
        spec = load_scenario(path)
        fast = " [fast preset]" if spec.fast else ""
        print(f"{name:24s} {spec.dataset.source:8s} {spec.model.kind:10s} "
              f"{spec.traffic.mode}-loop{fast}  {spec.description}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    spec = apply_preset(_resolve_scenario(args.dir, args.name), args.preset)
    print(json.dumps(scenario_to_dict(spec), indent=2))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    spec = _resolve_scenario(args.dir, args.name)
    entry = run_scenario(
        spec,
        preset=args.preset,
        out_dir=args.out,
        artifact_dir=args.artifact_dir,
        offline=args.offline,
        saturation=args.saturation,
        rollout=args.rollout,
    )
    load = entry["load"]
    print(
        f"repro-scenarios: {args.name} ({load['mode']}-loop, "
        f"{load['n_requests']} requests x {load['rows_per_request']} rows): "
        f"{load['throughput_rps']:.1f} req/s, "
        f"p50 {load['latency_ms']['p50']:.2f} ms, "
        f"p99 {load['latency_ms']['p99']:.2f} ms, "
        f"error rate {load['error_rate']:.4f}"
    )
    rollout_block = entry.get("rollout")
    if rollout_block:
        swap = rollout_block["swap"]
        print(
            f"repro-scenarios: rollout: {rollout_block['n_requests']} requests "
            f"through {rollout_block['workers']} workers "
            f"({rollout_block['mode']} candidate), "
            f"{rollout_block['n_dropped']} dropped, {rollout_block['n_5xx']} 5xx, "
            f"swap converged={swap['converged']}"
        )
    bench_file = Path(args.out) / f"BENCH_{args.name}.json"
    print(f"repro-scenarios: trajectory updated: {bench_file}")
    if load["slo_violations"]:
        for violation in load["slo_violations"]:
            print(f"repro-scenarios: SLO violation: {violation}", file=sys.stderr)
        if args.check_slo:
            return 1
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    path = Path(args.path)
    if path.name.startswith("BENCH_"):
        doc = load_bench(path)
        print(
            f"{path}: valid bench trajectory for {doc['scenario']!r} "
            f"({len(doc['runs'])} runs)"
        )
    else:
        spec = load_scenario(path)
        print(f"{path}: valid scenario {spec.name!r}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "show": _cmd_show,
        "run": _cmd_run,
        "validate": _cmd_validate,
    }
    try:
        return handlers[args.command](args)
    except ScenarioError as exc:
        print(f"repro-scenarios: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
