"""Worker-scaling sweep: how pool throughput grows with worker count.

The question PR 9's pool must answer quantitatively: *does adding
workers add throughput, and where does it stop?*  Two engines share one
report shape, and every report says which engine produced it:

* ``engine="simulated"`` — a deterministic discrete-event model of the
  pre-fork pool: one serialised dispatcher (the shared accept/parse
  path) feeding a FIFO central queue drained by ``n_workers`` identical
  servers.  Service times come from the caller — a constant, an
  ``f(request_index) -> seconds`` model, or a wall-clock measurement of
  the real fused-predict path via :func:`measure_service_time`.  This is
  the honest way to state N-worker scaling on a single-core CI box
  (running four processes on one core measures the scheduler, not the
  pool); it is the same discipline as the ``workers="inline"`` load
  engine and the queueing self-checks in ``bench_scenarios.py``.
* ``engine="http"`` — real requests against a live
  :class:`~repro.serve.pool.ServePool` per worker count, for multi-core
  machines where wall-clock scaling is measurable.

Both engines emit one :class:`~repro.scenarios.load.LoadReport` per
worker count; :class:`WorkerScalingReport` adds the speedup-vs-baseline
series and serialises into the ``sweep`` section of a BENCH run entry
(``BENCH_serve_scale.json`` is the committed trajectory).

Simulation fidelity notes: the dispatcher stage models the part of the
pool that does *not* parallelise (kernel accept, header parse, JSON
decode happen per-request regardless of worker count), so sweeps show
Amdahl behaviour — near-linear while ``dispatch_s << service_s /
n_workers``, flat once the serial stage saturates.  The central queue
is FIFO in arrival order and each request runs on the earliest-free
worker, which matches ``SO_REUSEPORT``'s behaviour in the aggregate
without modelling its per-connection hashing.
"""

from __future__ import annotations

import heapq
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs import span
from repro.scenarios.errors import ScenarioError
from repro.scenarios.load import (
    HttpTransport,
    LoadReport,
    arrival_schedule,
    run_load,
    summarize,
)
from repro.scenarios.metrics import record_load_request, record_load_run
from repro.scenarios.schema import SLOSpec, TrafficSpec

ServiceModel = Union[float, Callable[[int], float]]


def _service_fn(service_s: ServiceModel) -> Callable[[int], float]:
    if callable(service_s):
        return lambda i: float(service_s(i))
    fixed = float(service_s)
    if fixed <= 0:
        raise ScenarioError(f"service_s must be > 0, got {fixed}")
    return lambda i: fixed


def simulate_pool(
    traffic: TrafficSpec,
    *,
    n_workers: int,
    service_s: ServiceModel,
    dispatch_s: float = 0.0,
    status_fn: Optional[Callable[[int], int]] = None,
) -> Tuple[List[float], List[int], float]:
    """Discrete-event run of ``traffic`` against an N-worker pool.

    Topology: requests pass through one serialised dispatcher
    (``dispatch_s`` each, FIFO in arrival order), then queue centrally
    for the earliest-free of ``n_workers`` servers (``service_s`` each).
    Latency is completion minus arrival, exactly as a client measures
    it.  Pure virtual time — no clock, no sleeping, bit-stable across
    machines.

    Returns ``(latencies_s, statuses, duration_s)`` ready for
    :func:`~repro.scenarios.load.summarize`.
    """
    traffic.validate()
    if n_workers < 1:
        raise ScenarioError(f"n_workers must be >= 1, got {n_workers}")
    if dispatch_s < 0:
        raise ScenarioError(f"dispatch_s must be >= 0, got {dispatch_s}")
    service = _service_fn(service_s)
    dispatch = float(dispatch_s)

    if traffic.mode == "open":
        arrivals: Sequence[float] = arrival_schedule(traffic).tolist()
    else:
        # Closed loop: each of ``concurrency`` clients re-arrives when its
        # previous request completes; arrival times emerge from the run.
        arrivals = []

    latencies: List[float] = []
    statuses: List[int] = []
    servers: List[float] = [0.0] * n_workers
    heapq.heapify(servers)
    dispatcher_free = 0.0
    last_completion = 0.0

    def serve_one(i: int, arrival: float) -> float:
        nonlocal dispatcher_free, last_completion
        dispatched = max(arrival, dispatcher_free) + dispatch
        dispatcher_free = dispatched
        free_at = heapq.heappop(servers)
        completion = max(dispatched, free_at) + service(i)
        heapq.heappush(servers, completion)
        latency = completion - arrival
        status = status_fn(i) if status_fn is not None else 200
        latencies.append(latency)
        statuses.append(int(status))
        record_load_request(latency, status)
        last_completion = max(last_completion, completion)
        return completion

    if traffic.mode == "open":
        for i, arrival in enumerate(arrivals):
            serve_one(i, float(arrival))
    else:
        ready = [(0.0, c) for c in range(traffic.concurrency)]
        heapq.heapify(ready)
        for i in range(traffic.n_requests):
            arrival, client = heapq.heappop(ready)
            completion = serve_one(i, arrival)
            heapq.heappush(ready, (completion, client))
    return latencies, statuses, last_completion


def measure_service_time(
    predict_once: Callable[[], Any],
    *,
    repeats: int = 9,
    warmup: int = 2,
) -> float:
    """Median wall-clock seconds of one fused predict call.

    Feed the result into :func:`simulate_pool` / :func:`sweep_workers`
    as the simulated engine's ``service_s`` — the sweep's *ratios* stay
    deterministic while its absolute scale reflects the real model.
    """
    if repeats < 1:
        raise ScenarioError(f"repeats must be >= 1, got {repeats}")
    for _ in range(max(0, warmup)):
        predict_once()
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        predict_once()
        times.append(time.perf_counter() - started)
    times.sort()
    return times[len(times) // 2]


@dataclass
class WorkerScalingReport:
    """One sweep: a LoadReport per worker count plus the scaling series."""

    engine: str
    workers: List[int]
    runs: Dict[int, LoadReport]
    speedup: Dict[int, float]
    params: Dict[str, Any] = field(default_factory=dict)

    @property
    def baseline_workers(self) -> int:
        return self.workers[0]

    @property
    def max_speedup(self) -> float:
        return self.speedup[self.workers[-1]]

    @property
    def error_free(self) -> bool:
        return all(r.error_rate == 0.0 for r in self.runs.values())

    def to_dict(self) -> Dict[str, Any]:
        """The ``sweep`` section of a BENCH run entry (JSON keys are
        stringified worker counts, mirroring ``status_counts``)."""
        return {
            "engine": self.engine,
            "workers": list(self.workers),
            "params": dict(self.params),
            "runs": {str(n): self.runs[n].to_dict() for n in self.workers},
            "speedup": {str(n): float(self.speedup[n]) for n in self.workers},
        }


def sweep_workers(
    traffic: TrafficSpec,
    *,
    workers: Sequence[int] = (1, 2, 4),
    engine: str = "simulated",
    service_s: Optional[ServiceModel] = None,
    dispatch_s: float = 0.0,
    status_fn: Optional[Callable[[int], int]] = None,
    slo: Optional[SLOSpec] = None,
    pool_factory: Optional[Callable[[int], Any]] = None,
    rows: Optional[np.ndarray] = None,
) -> WorkerScalingReport:
    """Run ``traffic`` once per worker count; report throughput scaling.

    Parameters
    ----------
    workers:
        Pool sizes to sweep, ascending; the first is the speedup
        baseline (the acceptance gate uses ``(1, 2, 4)``).
    engine:
        ``"simulated"`` (deterministic discrete-event model; requires
        ``service_s``) or ``"http"`` (live pools; requires
        ``pool_factory``).
    service_s / dispatch_s / status_fn:
        Simulated engine knobs — per-request service time, the
        serialised dispatcher cost, and an optional error injector.
    pool_factory:
        HTTP engine: ``factory(n_workers)`` context manager yielding a
        base URL for a pool of that size (see
        :func:`artifact_pool_factory`).
    slo / rows:
        Forwarded to the per-run report / the HTTP load generator.
    """
    traffic.validate()
    counts = [int(n) for n in workers]
    if not counts or sorted(set(counts)) != counts:
        raise ScenarioError(
            f"workers must be strictly ascending and non-empty, got {list(workers)!r}"
        )
    if counts[0] < 1:
        raise ScenarioError(f"worker counts must be >= 1, got {counts[0]}")
    if engine not in ("simulated", "http"):
        raise ScenarioError(f"engine must be 'simulated' or 'http', got {engine!r}")
    if engine == "simulated" and service_s is None:
        raise ScenarioError("the simulated engine needs a service_s model")
    if engine == "http" and pool_factory is None:
        raise ScenarioError("the http engine needs a pool_factory")
    slo = slo or SLOSpec()

    runs: Dict[int, LoadReport] = {}
    with span("scenarios.worker_sweep", engine=engine, steps=len(counts)):
        for n in counts:
            if engine == "simulated":
                latencies, statuses, duration = simulate_pool(
                    traffic,
                    n_workers=n,
                    service_s=service_s,
                    dispatch_s=dispatch_s,
                    status_fn=status_fn,
                )
                report = summarize(traffic, slo, latencies, statuses, duration)
                record_load_run(report)
            else:
                with pool_factory(n) as base_url:
                    report = run_load(
                        traffic,
                        HttpTransport(base_url, timeout_s=traffic.timeout_s),
                        slo=slo,
                        rows=rows,
                        workers="threads",
                    )
            runs[n] = report

    base = runs[counts[0]].throughput_rps
    speedup = {
        n: (runs[n].throughput_rps / base) if base > 0 else 0.0 for n in counts
    }
    params: Dict[str, Any] = {}
    if engine == "simulated":
        params["dispatch_ms"] = float(dispatch_s) * 1000.0
        if not callable(service_s):
            params["service_ms"] = float(service_s) * 1000.0
    return WorkerScalingReport(
        engine=engine, workers=counts, runs=runs, speedup=speedup, params=params
    )


def check_scaling(
    report: WorkerScalingReport,
    *,
    at_workers: int,
    min_speedup: float,
) -> List[str]:
    """Gate a sweep; returns human-readable violations (empty = pass).

    The PR 9 acceptance bar is ``at_workers=4, min_speedup=2.5`` with a
    zero error rate at every pool size.
    """
    violations: List[str] = []
    if at_workers not in report.runs:
        violations.append(
            f"sweep has no {at_workers}-worker run (workers: {report.workers})"
        )
        return violations
    got = report.speedup[at_workers]
    if got < min_speedup:
        violations.append(
            f"throughput at {at_workers} workers is {got:.2f}x the "
            f"{report.baseline_workers}-worker baseline (required: "
            f">= {min_speedup:.2f}x)"
        )
    for n in report.workers:
        if report.runs[n].error_rate != 0.0:
            violations.append(
                f"{n}-worker run had errors: {report.runs[n].status_counts}"
            )
    return violations


def artifact_pool_factory(
    artifact: Any, config: Optional[Any] = None
) -> Callable[[int], Any]:
    """``pool_factory`` for the HTTP engine: one live ServePool per size.

    Each sweep step boots a fresh :class:`~repro.serve.pool.ServePool`
    over ``artifact`` with that step's worker count on an ephemeral
    port, yields its base URL, and tears it down before the next step.
    """
    from dataclasses import replace as dc_replace

    from repro.serve import ServeConfig, ServePool

    base = config if config is not None else ServeConfig()

    @contextmanager
    def factory(n_workers: int) -> Iterator[str]:
        pool = ServePool(artifact, dc_replace(base, workers=n_workers, port=0))
        host, port = pool.start()
        try:
            yield f"http://{host}:{port}"
        finally:
            pool.stop()

    return factory


__all__ = [
    "WorkerScalingReport",
    "artifact_pool_factory",
    "check_scaling",
    "measure_service_time",
    "simulate_pool",
    "sweep_workers",
]
