"""Command-line entry point: ``repro-obs`` / ``python -m repro.obs``.

Wraps any benchmark/example script with tracing armed::

    repro-obs --json trace.json --prom metrics.prom examples/pima_pipeline.py

The target script runs in-process (``runpy``) under a root span named
``repro-obs``, with ``REPRO_OBS=1`` exported so process-pool workers
(either start method) arm themselves too.  The script's top-level
imports are traced as ``script.import`` spans (one per outermost
uncached import), so dependency import time is attributed rather than
appearing as an unexplained coverage gap.  After the script finishes —
including via ``SystemExit`` — the collected spans and metrics are
written as JSON and/or Prometheus text (``-`` = stdout), a one-line
coverage summary is printed, and ``--min-coverage`` turns the summary
into a CI gate.
"""

from __future__ import annotations

import argparse
import builtins
import os
import runpy
import sys
from types import ModuleType
from typing import Any, Mapping, Optional, Sequence

from repro import obs
from repro.obs import export


class _ImportSpans:
    """Trace the script's top-level module imports as ``script.import`` spans.

    A wrapped script spends real wall-clock importing its dependencies
    (numpy, scipy, the repro subpackages) before any instrumented hot
    path runs; without accounting, that time is unattributed root-span
    wall-clock and the coverage gate blames the instrumentation.  The
    hook wraps ``builtins.__import__`` while the script runs: only
    outermost, not-yet-cached imports open a span — nested imports are
    billed to their importer's span — so each heavyweight dependency
    shows up once, as a direct child of the root.
    """

    def __init__(self) -> None:
        self._depth = 0
        self._original = builtins.__import__

    def __enter__(self) -> "_ImportSpans":
        builtins.__import__ = self._traced
        return self

    def __exit__(self, *exc: object) -> None:
        builtins.__import__ = self._original

    def _traced(
        self,
        name: str,
        globals: Optional[Mapping[str, Any]] = None,
        locals: Optional[Mapping[str, Any]] = None,
        fromlist: Sequence[str] = (),
        level: int = 0,
    ) -> ModuleType:
        if self._depth or name in sys.modules:
            return self._original(name, globals, locals, fromlist, level)
        self._depth += 1
        try:
            with obs.span("script.import", module=name):
                return self._original(name, globals, locals, fromlist, level)
        finally:
            self._depth -= 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description=(
            "Run a Python script with repro.obs tracing armed and export "
            "the collected spans/metrics (JSON and/or Prometheus text)."
        ),
    )
    parser.add_argument("script", help="path to the Python script to run")
    parser.add_argument(
        "script_args", nargs=argparse.REMAINDER, metavar="...",
        help="arguments passed through to the script",
    )
    parser.add_argument(
        "--json", dest="json_out", default=None, metavar="PATH",
        help="write the JSON span/metric dump here ('-' = stdout)",
    )
    parser.add_argument(
        "--prom", dest="prom_out", default=None, metavar="PATH",
        help="write the Prometheus text exposition here ('-' = stdout)",
    )
    parser.add_argument(
        "--min-coverage", type=float, default=None, metavar="FRACTION",
        help=(
            "exit non-zero unless the root span's direct children cover at "
            "least this fraction of its wall-clock (e.g. 0.9)"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the coverage summary line on stderr",
    )
    return parser


def _write(path: str, content: str) -> None:
    if path == "-":
        sys.stdout.write(content)
        if not content.endswith("\n"):
            sys.stdout.write("\n")
    else:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(content)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    # Arm tracing in this process and (via the env) in any worker
    # processes the script spawns through repro.parallel.
    os.environ["REPRO_OBS"] = "1"
    obs.enable()
    obs.reset()

    old_argv = sys.argv
    sys.argv = [args.script] + list(args.script_args)
    script_exit = 0
    try:
        with obs.span("repro-obs", script=args.script):
            try:
                with _ImportSpans():
                    runpy.run_path(args.script, run_name="__main__")
            except SystemExit as exc:  # a script calling sys.exit still exports
                code = exc.code
                script_exit = code if isinstance(code, int) else (0 if code is None else 1)
    finally:
        sys.argv = old_argv

    records = obs.spans()
    if args.json_out:
        _write(args.json_out, export.to_json(records))
    if args.prom_out:
        _write(args.prom_out, export.to_prometheus(records))

    summary = export.span_coverage(records)
    if not args.quiet:
        print(
            "repro-obs: {n} spans, root {root!r} {secs:.3f}s, "
            "direct-child coverage {cov:.1%}".format(
                n=len(records),
                root=summary["root"],
                secs=summary["root_seconds"],
                cov=summary["coverage"],
            ),
            file=sys.stderr,
        )
    if script_exit != 0:
        return script_exit
    if args.min_coverage is not None and summary["coverage"] < args.min_coverage:
        print(
            f"repro-obs: coverage {summary['coverage']:.3f} below required "
            f"{args.min_coverage:.3f}",
            file=sys.stderr,
        )
        return 3
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
