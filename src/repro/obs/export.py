"""Exporters for the observability subsystem: JSON and Prometheus text.

Two render targets over the same snapshot:

* :func:`to_json` — a machine-readable dump of every completed span (the
  full call tree, ids and parent ids intact) plus the metrics registry.
* :func:`to_prometheus` — the Prometheus text exposition format
  (version 0.0.4): span durations aggregated per span name into
  ``repro_span_seconds_total`` / ``repro_span_total`` counters and the
  registry's counters/gauges/histograms with cumulative ``le`` buckets,
  ``_sum`` and ``_count`` series.

:func:`span_coverage` computes the wall-clock share of a root span
accounted for by its direct children — the metric the acceptance
criterion ("spans cover >= 90% of wall-clock") is checked against by
the ``repro-obs`` CLI.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.spans import SpanRecord, spans

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")
_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def sanitize_metric_name(name: str) -> str:
    """Map an arbitrary dotted name onto the Prometheus name grammar."""
    cleaned = _NAME_RE.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape_label(value: str) -> str:
    return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in value)


def _fmt(value: float) -> str:
    # Integral values render without a trailing ".0" (Prometheus style).
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def snapshot(
    records: Optional[Sequence[SpanRecord]] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, Any]:
    """Combined serializable snapshot of spans + metrics."""
    records = spans() if records is None else list(records)
    registry = REGISTRY if registry is None else registry
    return {
        "spans": [rec.as_dict() for rec in records],
        "metrics": registry.collect(),
    }


def to_json(
    records: Optional[Sequence[SpanRecord]] = None,
    registry: Optional[MetricsRegistry] = None,
    *,
    indent: int = 2,
) -> str:
    """Render the snapshot as a JSON document."""
    return json.dumps(snapshot(records, registry), indent=indent, sort_keys=True)


def _span_aggregates(records: Sequence[SpanRecord]) -> Dict[str, Dict[str, float]]:
    agg: Dict[str, Dict[str, float]] = {}
    for rec in records:
        entry = agg.setdefault(rec.name, {"seconds": 0.0, "count": 0.0})
        entry["seconds"] += rec.duration
        entry["count"] += 1
    return agg


def to_prometheus(
    records: Optional[Sequence[SpanRecord]] = None,
    registry: Optional[MetricsRegistry] = None,
) -> str:
    """Render the snapshot in the Prometheus text exposition format."""
    records = spans() if records is None else list(records)
    registry = REGISTRY if registry is None else registry
    lines: List[str] = []

    agg = _span_aggregates(records)
    if agg:
        lines.append("# HELP repro_span_seconds_total Cumulative span duration by span name.")
        lines.append("# TYPE repro_span_seconds_total counter")
        for name in sorted(agg):
            lines.append(
                f'repro_span_seconds_total{{span="{_escape_label(name)}"}} '
                f"{_fmt(agg[name]['seconds'])}"
            )
        lines.append("# HELP repro_span_total Completed span count by span name.")
        lines.append("# TYPE repro_span_total counter")
        for name in sorted(agg):
            lines.append(
                f'repro_span_total{{span="{_escape_label(name)}"}} '
                f"{_fmt(agg[name]['count'])}"
            )

    for name, state in registry.collect().items():
        kind = state["kind"]
        metric = f"repro_{sanitize_metric_name(name)}"
        if kind == "counter":
            lines.append(f"# TYPE {metric}_total counter")
            lines.append(f"{metric}_total {_fmt(float(state['value']))}")  # type: ignore[arg-type]
        elif kind == "gauge":
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_fmt(float(state['value']))}")  # type: ignore[arg-type]
        elif kind == "histogram":
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            counts: Sequence[int] = state["counts"]  # type: ignore[assignment]
            bounds: Sequence[float] = state["boundaries"]  # type: ignore[assignment]
            for bound, count in zip(bounds, counts):
                cumulative += int(count)
                lines.append(f'{metric}_bucket{{le="{_fmt(float(bound))}"}} {cumulative}')
            cumulative += int(counts[-1])
            lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{metric}_sum {_fmt(float(state['sum']))}")  # type: ignore[arg-type]
            lines.append(f"{metric}_count {int(state['count'])}")  # type: ignore[call-overload]
    return "\n".join(lines) + "\n"


def span_coverage(
    records: Sequence[SpanRecord], root_id: Optional[int] = None
) -> Dict[str, Any]:
    """Share of a root span's wall-clock covered by its direct children.

    With ``root_id=None`` the root is the longest parentless span.
    Returns the root name/duration, summed direct-child duration and the
    ``coverage`` ratio (0.0 when there is no root or it has no duration).
    """
    root: Optional[SpanRecord] = None
    if root_id is not None:
        for rec in records:
            if rec.span_id == root_id:
                root = rec
                break
    else:
        roots = [rec for rec in records if rec.parent_id is None]
        if roots:
            root = max(roots, key=lambda rec: rec.duration)
    if root is None:
        return {"root": None, "root_seconds": 0.0, "child_seconds": 0.0, "coverage": 0.0}
    child_seconds = sum(
        rec.duration for rec in records if rec.parent_id == root.span_id
    )
    coverage = child_seconds / root.duration if root.duration > 0 else 0.0
    return {
        "root": root.name,
        "root_seconds": root.duration,
        "child_seconds": child_seconds,
        "coverage": coverage,
    }
