"""``python -m repro.obs`` == the ``repro-obs`` CLI."""

from repro.obs.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
