"""Span-based tracing with parent/child nesting and worker propagation.

The programming model is one context manager::

    from repro.obs import span

    with span("encode.transform", rows=int(n)):
        ...

Spans nest: a span opened inside another (same thread) records the outer
span as its parent, so the exporters can reconstruct the call tree and
compute wall-clock coverage.  Completed spans accumulate in a process-
local buffer (:func:`drain_spans` / :func:`spans`), and each completion
feeds a ``span.<name>.seconds`` histogram in the default metrics
registry so Prometheus-style latency distributions come for free.

Zero-cost when disabled
-----------------------
Like :mod:`repro.utils.contracts`, the subsystem is armed by the
``REPRO_OBS`` environment variable (truthy values: ``1/true/yes/on``).
When disabled, :func:`span` returns a shared singleton null context
manager and records nothing — the instrumentation cost in the hot paths
is one module-global check per call site.  :func:`enable` /
:func:`disable` flip the switch at runtime for tests and the
``repro-obs`` CLI.

Worker propagation
------------------
:func:`repro.parallel.pool.parallel_map` ships spans recorded inside
process-pool workers back to the parent alongside each chunk result:
the worker drains its buffer per item (:func:`worker_collect`), and the
parent re-parents the worker's root spans under the span that was
active at dispatch time (:func:`ingest_spans`), remapping span ids so
they stay unique in the parent process.  Thread workers simply adopt
the dispatcher's current span as their parent via
:func:`run_with_parent`.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import REGISTRY

_TRUTHY = {"1", "true", "yes", "on"}


def _env_enabled() -> bool:
    return os.environ.get("REPRO_OBS", "").strip().lower() in _TRUTHY


@dataclass
class SpanRecord:
    """One completed span: identity, tree position, timing, attributes."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float          # wall-clock epoch seconds (time.time)
    duration: float       # seconds, measured with perf_counter
    attrs: Dict[str, Any] = field(default_factory=dict)
    pid: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "pid": self.pid,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SpanRecord":
        return cls(
            name=payload["name"],
            span_id=int(payload["span_id"]),
            parent_id=None if payload["parent_id"] is None else int(payload["parent_id"]),
            start=float(payload["start"]),
            duration=float(payload["duration"]),
            attrs=dict(payload.get("attrs", {})),
            pid=int(payload.get("pid", 0)),
        )


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Live span context manager; records itself into the tracer on exit."""

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "_start", "_t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0
        self.parent_id: Optional[int] = None

    def set(self, **attrs: Any) -> "_ActiveSpan":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_ActiveSpan":
        self._tracer._open(self)
        self._start = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        duration = time.perf_counter() - self._t0
        self._tracer._close(self, self._start, duration)
        return False


class _Tls(threading.local):
    def __init__(self) -> None:
        self.stack: List[_ActiveSpan] = []
        self.base_parent: Optional[int] = None


class Tracer:
    """Process-local span collector.

    Holds the enabled flag, the per-thread span stack (nesting), a
    monotonically increasing span-id counter, and the completed-span
    buffer.  All public mutation happens through :func:`span` and the
    module-level helpers; tests may instantiate private tracers.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._completed: List[SpanRecord] = []
        self._tls = _Tls()

    # -- span lifecycle -------------------------------------------------
    def start(self, name: str, attrs: Dict[str, Any]) -> _ActiveSpan:
        return _ActiveSpan(self, name, attrs)

    def _open(self, active: _ActiveSpan) -> None:
        active.span_id = next(self._ids)
        stack = self._tls.stack
        active.parent_id = stack[-1].span_id if stack else self._tls.base_parent
        stack.append(active)

    def _close(self, active: _ActiveSpan, start: float, duration: float) -> None:
        stack = self._tls.stack
        if stack and stack[-1] is active:
            stack.pop()
        record = SpanRecord(
            name=active.name,
            span_id=active.span_id,
            parent_id=active.parent_id,
            start=start,
            duration=duration,
            attrs=active.attrs,
            pid=os.getpid(),
        )
        with self._lock:
            self._completed.append(record)
        REGISTRY.histogram(f"span.{active.name}.seconds").observe(duration)

    # -- buffer access --------------------------------------------------
    def current_span_id(self) -> Optional[int]:
        stack = self._tls.stack
        return stack[-1].span_id if stack else self._tls.base_parent

    def records(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._completed)

    def drain(self) -> List[SpanRecord]:
        with self._lock:
            out = self._completed
            self._completed = []
        return out

    def ingest(
        self, records: Sequence[SpanRecord], parent_id: Optional[int] = None
    ) -> None:
        """Adopt foreign (worker) spans: remap ids to this tracer's counter
        so they stay unique, and attach orphan roots under ``parent_id``."""
        if not records:
            return
        remap: Dict[int, int] = {}
        adopted: List[SpanRecord] = []
        for rec in records:
            remap[rec.span_id] = next(self._ids)
        for rec in records:
            new_parent = (
                remap[rec.parent_id]
                if rec.parent_id is not None and rec.parent_id in remap
                else parent_id
            )
            adopted.append(
                SpanRecord(
                    name=rec.name,
                    span_id=remap[rec.span_id],
                    parent_id=new_parent,
                    start=rec.start,
                    duration=rec.duration,
                    attrs=rec.attrs,
                    pid=rec.pid,
                )
            )
        with self._lock:
            self._completed.extend(adopted)

    def reset(self) -> None:
        with self._lock:
            self._completed = []
        self._tls.stack = []
        self._tls.base_parent = None


#: The process-local tracer; armed from REPRO_OBS at import time.
TRACER = Tracer(enabled=_env_enabled())


def enabled() -> bool:
    """True when tracing is armed (``REPRO_OBS`` or :func:`enable`)."""
    return TRACER.enabled


def enable() -> None:
    """Arm tracing at runtime (used by tests and the ``repro-obs`` CLI)."""
    TRACER.enabled = True


def disable() -> None:
    """Disarm tracing; existing records stay until :func:`reset`."""
    TRACER.enabled = False


def reset() -> None:
    """Clear recorded spans and this thread's span stack."""
    TRACER.reset()


def span(name: str, **attrs: Any):
    """Open a span; a shared no-op when tracing is disabled."""
    if not TRACER.enabled:
        return NULL_SPAN
    return TRACER.start(name, attrs)


def spans() -> List[SpanRecord]:
    """Snapshot of completed spans (does not clear the buffer)."""
    return TRACER.records()


def drain_spans() -> List[SpanRecord]:
    """Remove and return all completed spans."""
    return TRACER.drain()


def current_span_id() -> Optional[int]:
    """Id of the innermost open span on this thread, if any."""
    return TRACER.current_span_id()


def ingest_spans(
    records: Sequence[SpanRecord], parent_id: Optional[int] = None
) -> None:
    """Adopt spans recorded elsewhere (worker processes) into this tracer."""
    TRACER.ingest(records, parent_id=parent_id)


def run_with_parent(
    parent_id: Optional[int], fn: Callable[..., Any], *args: Any
) -> Any:
    """Call ``fn`` with this thread's span-stack base seeded to ``parent_id``.

    Used by the thread backend of :func:`repro.parallel.pool.parallel_map`
    so spans opened inside worker threads nest under the span that was
    active in the dispatching thread.
    """
    tls = TRACER._tls
    prev = tls.base_parent
    tls.base_parent = parent_id
    try:
        return fn(*args)
    finally:
        tls.base_parent = prev


# -- process-worker shuttle helpers ------------------------------------


# Pid of the process in which this module last initialised worker-side
# tracing.  A fork child inherits the parent's value (and the parent's
# span buffer/metrics), so a mismatch with os.getpid() identifies the
# first shuttle call in a fresh worker — the moment to drop inherited
# state and arm the tracer.
_WORKER_READY_PID: Optional[int] = None


def worker_begin() -> None:
    """Prepare a process-pool worker to record spans for one work item.

    On the first call in a given worker process this arms the tracer
    (covering runtime :func:`enable` under both fork and spawn start
    methods) and drops any span buffer / metrics inherited from the
    parent via fork, so the worker only ever reports its own spans and
    metric deltas.  Subsequent calls in the same worker are no-ops.
    """
    global _WORKER_READY_PID
    if _WORKER_READY_PID != os.getpid():
        TRACER.reset()
        REGISTRY.reset()
        TRACER.enabled = True
        _WORKER_READY_PID = os.getpid()


def worker_collect() -> Tuple[List[Dict[str, Any]], Dict[str, Dict[str, object]]]:
    """Drain this worker's spans + metric deltas for shipping to the parent."""
    records = [rec.as_dict() for rec in TRACER.drain()]
    deltas = REGISTRY.collect()
    REGISTRY.reset()
    return records, deltas
