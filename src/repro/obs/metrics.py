"""Process-local metrics registry: counters, gauges, histograms.

Dependency-free and deliberately small.  Three metric kinds cover the
observability needs of the HDC hot paths:

* :class:`Counter` — monotonically increasing totals (rows encoded,
  queries served).
* :class:`Gauge` — last-write-wins instantaneous values (active workers,
  index size).
* :class:`Histogram` — fixed-boundary bucketed distributions following
  the Prometheus convention: each boundary is an *inclusive* upper bound
  (``le``), plus an implicit ``+Inf`` overflow bucket, with running
  ``sum`` and ``count``.

All metrics live in a :class:`MetricsRegistry`; the module-level
:data:`REGISTRY` is the process-local default that span instrumentation
and the exporters use.  Registries support :meth:`MetricsRegistry.merge`
so process-pool workers can ship their deltas back to the parent (see
:mod:`repro.obs.spans` and :mod:`repro.parallel.pool`).

Thread safety: every mutation takes the owning registry's lock.  The
hot paths record at chunk granularity (not per row), so contention is
negligible.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple, Union

# Default histogram boundaries in seconds, spanning sub-millisecond span
# bodies up to multi-minute experiment sweeps.
DEFAULT_SECONDS_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


class Counter:
    """Monotonic counter; ``add`` rejects negative increments."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def add(self, value: Union[int, float] = 1) -> None:
        if value < 0:
            raise ValueError(f"counter {self.name!r}: increment must be >= 0, got {value}")
        self._value += value

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self._value}


class Gauge:
    """Last-write-wins instantaneous value."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def set(self, value: Union[int, float]) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self._value}


class Histogram:
    """Fixed-boundary histogram (Prometheus ``le``-inclusive convention).

    ``boundaries`` are strictly increasing finite upper bounds; a value
    ``v`` lands in the first bucket whose boundary satisfies ``v <= le``,
    or in the implicit ``+Inf`` overflow bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        boundaries: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError(f"histogram {name!r}: need at least one boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name!r}: boundaries must be strictly increasing")
        self.name = name
        self.help = help
        self.boundaries = bounds
        # One slot per boundary plus the +Inf overflow slot.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: Union[int, float]) -> None:
        v = float(value)
        # bisect_left gives the first index with boundaries[idx] >= v,
        # which is exactly the inclusive-upper-bound bucket; values above
        # the last boundary fall through to the +Inf slot.
        self._counts[bisect_left(self.boundaries, v)] += 1
        self._sum += v
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts, overflow slot last."""
        return list(self._counts)

    def snapshot(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "boundaries": list(self.boundaries),
            "counts": list(self._counts),
            "sum": self._sum,
            "count": self._count,
        }


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name → metric map with get-or-create accessors and delta merging."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, factory, kind: str) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif metric.kind != kind:
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested {kind}"
                )
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, lambda: Counter(name, help), "counter")  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), "gauge")  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        boundaries: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help, boundaries), "histogram"
        )  # type: ignore[return-value]

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def collect(self) -> Dict[str, Dict[str, object]]:
        """Serializable snapshot of every metric (sorted by name)."""
        with self._lock:
            return {name: self._metrics[name].snapshot() for name in sorted(self._metrics)}

    def merge(self, snapshot: Dict[str, Dict[str, object]]) -> None:
        """Fold a :meth:`collect` snapshot (e.g. a worker's delta) into this
        registry.  Counters and histogram bucket counts add; gauges take the
        incoming value (last write wins)."""
        for name, state in snapshot.items():
            kind = state["kind"]
            if kind == "counter":
                self.counter(name).add(float(state["value"]))  # type: ignore[arg-type]
            elif kind == "gauge":
                self.gauge(name).set(float(state["value"]))  # type: ignore[arg-type]
            elif kind == "histogram":
                hist = self.histogram(
                    name, boundaries=state["boundaries"]  # type: ignore[arg-type]
                )
                incoming = state["counts"]
                if list(hist.boundaries) != [float(b) for b in state["boundaries"]]:  # type: ignore[union-attr]
                    raise ValueError(
                        f"histogram {name!r}: boundary mismatch on merge"
                    )
                with self._lock:
                    for i, c in enumerate(incoming):  # type: ignore[arg-type]
                        hist._counts[i] += int(c)
                    hist._sum += float(state["sum"])  # type: ignore[arg-type]
                    hist._count += int(state["count"])  # type: ignore[arg-type]
            else:
                raise ValueError(f"metric {name!r}: unknown kind {kind!r}")

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()


#: Process-local default registry used by span instrumentation + exporters.
REGISTRY = MetricsRegistry()
