"""Lightweight, dependency-free observability for the HDC hot paths.

Public surface:

* :func:`span` — ``with span("encode.transform", rows=n):`` tracing with
  parent/child nesting, propagated across ``repro.parallel`` process
  workers; a shared no-op unless armed.
* :data:`REGISTRY` / :class:`MetricsRegistry` — process-local counters,
  gauges and fixed-bucket histograms.
* :mod:`repro.obs.export` — JSON and Prometheus text renderers plus the
  :func:`~repro.obs.export.span_coverage` summary.
* ``repro-obs`` CLI (:mod:`repro.obs.cli`) — run any script with tracing
  armed and export the result.

Armed by ``REPRO_OBS=1`` (or :func:`enable` at runtime); disabled, every
instrumentation point costs one global check.  See DESIGN.md §8.
"""

from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
)
from repro.obs.spans import (
    NULL_SPAN,
    SpanRecord,
    Tracer,
    TRACER,
    current_span_id,
    disable,
    drain_spans,
    enable,
    enabled,
    ingest_spans,
    reset,
    run_with_parent,
    span,
    spans,
    worker_begin,
    worker_collect,
)
from repro.obs.export import snapshot, span_coverage, to_json, to_prometheus

__all__ = [
    "DEFAULT_SECONDS_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "NULL_SPAN",
    "SpanRecord",
    "Tracer",
    "TRACER",
    "current_span_id",
    "disable",
    "drain_spans",
    "enable",
    "enabled",
    "ingest_spans",
    "reset",
    "run_with_parent",
    "span",
    "spans",
    "worker_begin",
    "worker_collect",
    "snapshot",
    "span_coverage",
    "to_json",
    "to_prometheus",
]
