"""Micro-batched model serving over HTTP (stdlib only).

Public surface:

* :class:`~repro.serve.config.ServeConfig` — every serving knob, one
  validated frozen dataclass.
* :class:`~repro.serve.service.InferenceService` — validated requests
  in, micro-batched predictions out (usable without HTTP, e.g. by the
  serving benchmark).
* :class:`~repro.serve.http.ModelServer` — ThreadingHTTPServer front-end
  with ``POST /predict``, ``GET /healthz`` / ``/readyz`` / ``/metrics``.
* :class:`~repro.serve.batcher.MicroBatcher` /
  :class:`~repro.serve.batcher.QueueFullError` — the batching scheduler
  and its admission-control signal.
* ``repro-serve`` CLI (:mod:`repro.serve.cli`) — serve a
  :mod:`repro.persist` artifact directory.

See DESIGN.md §9 for the scheduler's flush rules and the error-to-status
mapping.
"""

from repro.serve.batcher import MicroBatcher, QueueFullError
from repro.serve.config import ServeConfig
from repro.serve.http import ModelServer
from repro.serve.service import (
    InferenceService,
    NotReadyError,
    PayloadTooLargeError,
    ServeError,
    ValidationError,
)

__all__ = [
    "InferenceService",
    "MicroBatcher",
    "ModelServer",
    "NotReadyError",
    "PayloadTooLargeError",
    "QueueFullError",
    "ServeConfig",
    "ServeError",
    "ValidationError",
]
