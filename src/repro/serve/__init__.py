"""Micro-batched model serving over HTTP (stdlib only).

Public surface:

* :class:`~repro.serve.config.ServeConfig` — every serving knob, one
  validated frozen dataclass;
  :func:`~repro.serve.config.resolve_serve_config` combines explicit
  pool knobs with ``REPRO_SERVE_*`` environment defaults.
* :class:`~repro.serve.service.InferenceService` — validated requests
  in, micro-batched predictions out (usable without HTTP, e.g. by the
  serving benchmark).
* :class:`~repro.serve.http.ModelServer` — ThreadingHTTPServer front-end
  with ``POST /v1/predict`` (versioned envelope), ``POST /predict``
  (deprecated alias), ``GET /healthz`` / ``/readyz`` / ``/metrics``.
* :class:`~repro.serve.pool.ServePool` — pre-fork multi-worker pool
  sharing one ``SO_REUSEPORT`` address and (with ``mmap``) one set of
  physical artifact pages; aggregates metrics and readiness across
  workers.
* :class:`~repro.serve.batcher.MicroBatcher` /
  :class:`~repro.serve.batcher.QueueFullError` — the batching scheduler
  and its admission-control signal.
* ``repro-serve`` CLI (:mod:`repro.serve.cli`) — serve a
  :mod:`repro.persist` artifact directory (``--workers/--shards/--mmap``
  select the pool; ``--watch-artifact`` / ``--candidate-artifact`` wire
  in the live lifecycle).

Hot-swap reloads, shadow/A-B candidates and drift detection live in
:mod:`repro.lifecycle` and surface here through ``POST /v1/admin/*``
plus the :class:`~repro.serve.service.ReloadError` /
:class:`~repro.serve.service.PredictFailedError` error codes.

See DESIGN.md §9 for the scheduler's flush rules and error-to-status
mapping, §12 for the pool architecture and the ``/v1`` contract, and
§13 for the model lifecycle.
"""

from repro.serve.batcher import MicroBatcher, QueueFullError
from repro.serve.config import ServeConfig, resolve_serve_config
from repro.serve.http import ModelServer
from repro.serve.pool import ServePool
from repro.serve.service import (
    InferenceService,
    NotReadyError,
    PayloadTooLargeError,
    PredictFailedError,
    ReloadError,
    ServeError,
    ValidationError,
)

__all__ = [
    "InferenceService",
    "MicroBatcher",
    "ModelServer",
    "NotReadyError",
    "PayloadTooLargeError",
    "PredictFailedError",
    "QueueFullError",
    "ReloadError",
    "ServeConfig",
    "ServeError",
    "ServePool",
    "ValidationError",
    "resolve_serve_config",
]
