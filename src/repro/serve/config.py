"""Serving configuration: one frozen dataclass, validated at construction.

Every knob the service exposes lives here so the CLI, the tests and the
benchmark construct servers the same way.  The defaults target the
paper's deployment sketch: a single-host service in front of a 10k-bit
Pima model, where a ~5 ms batching window is invisible next to network
latency but lets the fused encoder amortise its per-call overhead over
dozens of rows.

Pool knobs (PR 9): ``workers`` / ``shards`` / ``mmap`` configure the
pre-fork serving pool (:mod:`repro.serve.pool`).  They resolve the same
way ``repro.parallel``'s worker settings do — explicit argument beats
environment beats default — through :func:`resolve_serve_config`, whose
environment spellings are ``REPRO_SERVE_WORKERS``,
``REPRO_SERVE_SHARDS`` and ``REPRO_SERVE_MMAP``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Optional

from repro.utils.deprecation import renamed_kwargs


@dataclass(frozen=True)
class ServeConfig:
    """Immutable settings for :class:`~repro.serve.http.ModelServer`.

    Parameters
    ----------
    host, port:
        Bind address.  ``port=0`` asks the OS for a free port (tests);
        the bound port is reported by ``ModelServer.address``.
    max_batch:
        Maximum *rows* fused into one model call.  The micro-batcher
        flushes as soon as the pending rows reach this bound, so
        ``max_batch=1`` degenerates to a per-request predict loop (the
        benchmark baseline).
    max_wait_ms:
        How long the batcher waits after the first queued request for
        more work before flushing a partial batch.  Bounds the latency
        cost of batching.
    queue_size:
        Bound on requests waiting for the batcher.  Admission control:
        submissions beyond it are rejected immediately (HTTP 429) rather
        than queued into unbounded latency.
    max_rows_per_request:
        Per-request row cap (HTTP 413 beyond it), so one client cannot
        monopolise a whole flush window.
    request_timeout_s:
        Safety bound a request waits for its batch result before the
        server gives up and reports an internal error.
    log_requests:
        When True the HTTP handler logs one line per request to stderr
        (quiet by default: the service is benchmarked).
    workers:
        Processes in the pre-fork pool (:class:`repro.serve.pool.
        ServePool`).  1 keeps the classic single-process server;
        >1 forks that many workers sharing one ``SO_REUSEPORT`` socket.
    shards:
        Contiguous partitions of the model's candidate store for the
        sharded scatter-gather engine — forwarded to models exposing a
        ``shards`` attribute (e.g. ``HammingClassifier``).  Results are
        bit-identical for every value.
    mmap:
        Load the artifact's payloads as read-only memory maps
        (``load_artifact(..., mmap=True)``) so pool workers share one
        set of physical pages instead of copying the packed arrays.
    watch_artifact:
        Poll the served artifact directory for manifest-sha changes and
        hot-swap in place when it moves (:class:`repro.lifecycle.watch.
        ArtifactWatcher`).  Pool mode verifies once in the supervisor and
        publishes a deploy record every worker applies.
    watch_interval_s:
        Poll period for ``watch_artifact``.
    candidate_artifact:
        Artifact directory mounted as a candidate at startup (shadow or
        A/B per ``candidate_mode``).  ``None`` starts with an empty
        candidate slot; candidates can always be mounted later through
        ``POST /v1/admin/candidate``.
    candidate_mode:
        ``"shadow"`` mirrors primary traffic to the candidate
        asynchronously; ``"ab"`` routes ``ab_fraction`` of live requests
        to it.
    ab_fraction:
        Fraction of live traffic the A/B splitter routes to the
        candidate (deterministic credit accumulator, not a coin flip).
    drift_threshold:
        Normalised Hamming-distance bound between the traffic centroid
        and the artifact's training centroid; beyond it the
        ``lifecycle.drift_alert`` gauge and the ``/readyz`` drift block
        flag drift (informational — never a 503).
    drift_window:
        Soft size of the traffic-centroid window: once ``2 * window``
        rows accumulate the counts are halved, so the centroid tracks
        recent traffic instead of all history.
    """

    host: str = "127.0.0.1"
    port: int = 8100
    max_batch: int = 64
    max_wait_ms: float = 5.0
    queue_size: int = 256
    max_rows_per_request: int = 1024
    request_timeout_s: float = 30.0
    log_requests: bool = False
    workers: int = 1
    shards: int = 1
    mmap: bool = False
    watch_artifact: bool = False
    watch_interval_s: float = 2.0
    candidate_artifact: Optional[str] = None
    candidate_mode: str = "shadow"
    ab_fraction: float = 0.5
    drift_threshold: float = 0.25
    drift_window: int = 2048

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {self.queue_size}")
        if self.max_rows_per_request < 1:
            raise ValueError(
                f"max_rows_per_request must be >= 1, got {self.max_rows_per_request}"
            )
        if self.request_timeout_s <= 0:
            raise ValueError(
                f"request_timeout_s must be > 0, got {self.request_timeout_s}"
            )
        if not (0 <= self.port <= 65535):
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.watch_interval_s <= 0:
            raise ValueError(
                f"watch_interval_s must be > 0, got {self.watch_interval_s}"
            )
        if self.candidate_mode not in ("shadow", "ab"):
            raise ValueError(
                f"candidate_mode must be shadow|ab, got {self.candidate_mode!r}"
            )
        if not (0.0 < self.ab_fraction <= 1.0):
            raise ValueError(
                f"ab_fraction must be in (0, 1], got {self.ab_fraction}"
            )
        if not (0.0 <= self.drift_threshold <= 1.0):
            raise ValueError(
                f"drift_threshold must be in [0, 1], got {self.drift_threshold}"
            )
        if self.drift_window < 1:
            raise ValueError(
                f"drift_window must be >= 1, got {self.drift_window}"
            )


def _env_int(name: str) -> Optional[int]:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return None
    try:
        return int(raw)
    except ValueError as exc:
        raise ValueError(f"{name} must be an int, got {raw!r}") from exc


def _env_bool(name: str) -> Optional[bool]:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return None
    lowered = raw.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"{name} must be a boolean flag, got {raw!r}")


@renamed_kwargs(n_workers="workers", n_shards="shards")
def resolve_serve_config(
    *,
    workers: Optional[int] = None,
    shards: Optional[int] = None,
    mmap: Optional[bool] = None,
    **fields: Any,
) -> ServeConfig:
    """Combine explicit pool knobs with environment defaults.

    Mirrors :func:`repro.parallel.pool.resolve_config`: an explicit
    (non-``None``) argument wins, otherwise the matching environment
    variable (``REPRO_SERVE_WORKERS`` / ``REPRO_SERVE_SHARDS`` /
    ``REPRO_SERVE_MMAP``), otherwise the dataclass default.  Any other
    :class:`ServeConfig` field passes through ``fields`` unchanged, so
    the CLI and tests build their whole config in one call.  The legacy
    ``n_workers`` / ``n_shards`` spellings still work but emit a
    ``DeprecationWarning`` (via ``renamed_kwargs``).
    """
    if workers is None:
        workers = _env_int("REPRO_SERVE_WORKERS")
    if shards is None:
        shards = _env_int("REPRO_SERVE_SHARDS")
    if mmap is None:
        mmap = _env_bool("REPRO_SERVE_MMAP")
    defaults = ServeConfig()
    return ServeConfig(
        workers=defaults.workers if workers is None else workers,
        shards=defaults.shards if shards is None else shards,
        mmap=defaults.mmap if mmap is None else mmap,
        **fields,
    )


__all__ = ["ServeConfig", "resolve_serve_config"]
