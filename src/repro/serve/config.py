"""Serving configuration: one frozen dataclass, validated at construction.

Every knob the service exposes lives here so the CLI, the tests and the
benchmark construct servers the same way.  The defaults target the
paper's deployment sketch: a single-host service in front of a 10k-bit
Pima model, where a ~5 ms batching window is invisible next to network
latency but lets the fused encoder amortise its per-call overhead over
dozens of rows.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ServeConfig:
    """Immutable settings for :class:`~repro.serve.http.ModelServer`.

    Parameters
    ----------
    host, port:
        Bind address.  ``port=0`` asks the OS for a free port (tests);
        the bound port is reported by ``ModelServer.address``.
    max_batch:
        Maximum *rows* fused into one model call.  The micro-batcher
        flushes as soon as the pending rows reach this bound, so
        ``max_batch=1`` degenerates to a per-request predict loop (the
        benchmark baseline).
    max_wait_ms:
        How long the batcher waits after the first queued request for
        more work before flushing a partial batch.  Bounds the latency
        cost of batching.
    queue_size:
        Bound on requests waiting for the batcher.  Admission control:
        submissions beyond it are rejected immediately (HTTP 429) rather
        than queued into unbounded latency.
    max_rows_per_request:
        Per-request row cap (HTTP 413 beyond it), so one client cannot
        monopolise a whole flush window.
    request_timeout_s:
        Safety bound a request waits for its batch result before the
        server gives up and reports an internal error.
    log_requests:
        When True the HTTP handler logs one line per request to stderr
        (quiet by default: the service is benchmarked).
    """

    host: str = "127.0.0.1"
    port: int = 8100
    max_batch: int = 64
    max_wait_ms: float = 5.0
    queue_size: int = 256
    max_rows_per_request: int = 1024
    request_timeout_s: float = 30.0
    log_requests: bool = False

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {self.queue_size}")
        if self.max_rows_per_request < 1:
            raise ValueError(
                f"max_rows_per_request must be >= 1, got {self.max_rows_per_request}"
            )
        if self.request_timeout_s <= 0:
            raise ValueError(
                f"request_timeout_s must be > 0, got {self.request_timeout_s}"
            )
        if not (0 <= self.port <= 65535):
            raise ValueError(f"port must be in [0, 65535], got {self.port}")


__all__ = ["ServeConfig"]
