"""Pre-fork multi-worker serving pool over a shared-memory artifact (PR 9).

:class:`ServePool` is the supervisor: it verifies the artifact **once**
(:func:`repro.persist.verify_artifact`, one streamed SHA-256 pass), then
forks ``config.workers`` worker processes.  Each worker loads the same
artifact read-only — with ``config.mmap`` the packed payload arrays are
``np.load(..., mmap_mode="r")`` maps, so every worker shares one set of
physical pages instead of copying the store — and runs the standard
:class:`~repro.serve.http.ModelServer` accept loop.

Socket sharing
--------------
Two strategies, picked automatically:

* ``reuseport`` (default where available): every worker binds its own
  socket to the same address with ``SO_REUSEPORT`` set and the kernel
  load-balances incoming connections across them.  The supervisor keeps
  a bound-but-not-listening placeholder socket in the same reuse group,
  which pins the address (and resolves ``port=0`` to a concrete port
  before any worker forks) without ever receiving connections.
* ``inherit`` (fallback): the supervisor binds + listens once before
  forking and every worker accepts on the inherited file descriptor.

Cross-worker observability
--------------------------
Workers periodically snapshot their process-local metrics registry into
a shared scratch directory; answering ``GET /metrics`` flushes the local
snapshot and folds every worker's file through
:meth:`repro.obs.metrics.MetricsRegistry.merge` (counters/histograms
add, gauges last-write-wins), so any worker renders the pool-wide view.

Aggregated readiness
--------------------
The supervisor maintains a roster file (``pool.json``) and reaps dead
children from a monitor thread; every worker's ``GET /readyz`` checks
the roster (plus a direct liveness probe of its siblings), so one dead
worker turns the whole pool's ``/readyz`` 503 even though the kernel
still happily routes connections to the survivors.

Worker restarts (PR 10)
-----------------------
The monitor thread also *replaces* dead workers: a crashed child is
re-forked with bounded exponential backoff (up to
:data:`MAX_WORKER_RESTARTS` replacements per pool lifetime, so a
crash-looping artifact cannot fork-bomb the host), counted by the
``serve.worker_restarts`` metric, which the supervisor folds into the
pool-wide ``/metrics`` view through a ``metrics-supervisor.json``
scratch snapshot.

Lifecycle propagation (PR 10)
-----------------------------
Hot-swaps and candidate mounts reach every worker through a
``deploy.json`` record in the scratch directory: whoever initiates the
change (the supervisor's :meth:`ServePool.publish_deploy`, or the one
worker whose admin endpoint took the request, via the
``service.pool_publish`` hook) verifies the artifact once and writes the
desired state with a bumped ``deploy_id``; every worker picks it up at
its next metrics-flush tick (within :data:`FLUSH_PERIOD_S`) and applies
it idempotently — re-forked workers catch up before marking ready.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import socket
import sys
import tempfile
import threading
import time
import traceback
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.export import to_prometheus
from repro.serve.config import ServeConfig
from repro.serve.http import ModelServer
from repro.serve.metrics import record_worker_restart, worker_restarts_snapshot
from repro.serve.service import InferenceService

#: How long ServePool.start() waits for every worker's ready marker.
READY_TIMEOUT_S = 30.0
#: Supervisor monitor-thread poll period (child reaping + roster refresh).
MONITOR_POLL_S = 0.1
#: Worker metrics-snapshot flush period (also the deploy-record poll).
FLUSH_PERIOD_S = 0.5
#: First restart backoff; doubles per replacement up to the max below.
RESTART_BACKOFF_S = 0.5
RESTART_BACKOFF_MAX_S = 10.0
#: Replacements per pool lifetime — a crash-looping artifact must not
#: turn the supervisor into a fork bomb.
MAX_WORKER_RESTARTS = 16

_ROSTER_NAME = "pool.json"
_DEPLOY_NAME = "deploy.json"
_SUPERVISOR_METRICS_NAME = "metrics-supervisor.json"

#: publish_deploy sentinel: "leave the candidate slot untouched".
_UNSET: Any = object()


def _write_json_atomic(path: Path, payload: Any) -> None:
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
    )
    tmp.write_text(json.dumps(payload, sort_keys=True))
    os.replace(tmp, path)


def _read_json(path: Path) -> Optional[Any]:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, different user
        return True
    return True


# ----------------------------------------------------------------------
# Worker-side hooks (run inside forked children)
# ----------------------------------------------------------------------
def _metrics_path(scratch: Path, pid: int) -> Path:
    return scratch / f"metrics-{pid}.json"


def _flush_metrics(scratch: Path) -> None:
    _write_json_atomic(_metrics_path(scratch, os.getpid()), REGISTRY.collect())


def _aggregate_metrics(scratch: Path) -> str:
    """Pool-wide Prometheus exposition: merge every worker's snapshot."""
    merged = MetricsRegistry()
    for path in sorted(scratch.glob("metrics-*.json")):
        snap = _read_json(path)
        if isinstance(snap, dict):
            merged.merge(snap)
    return to_prometheus(registry=merged)


def _pool_ready(scratch: Path) -> Tuple[bool, Any]:
    """Aggregated readiness: the roster says ok AND every sibling is alive."""
    roster = _read_json(scratch / _ROSTER_NAME)
    if not isinstance(roster, dict):
        return False, {"reason": "pool roster not written yet"}
    if roster.get("status") != "ok":
        return False, roster
    dead = [pid for pid in roster.get("workers", []) if not _pid_alive(pid)]
    if dead:
        # Faster than waiting for the supervisor's next reap cycle.
        return False, {"reason": "worker died", "dead": dead}
    return True, roster


# ----------------------------------------------------------------------
# Deploy-record plumbing (lifecycle fan-out across workers)
# ----------------------------------------------------------------------
def _publish_deploy_record(scratch: Path, record: Dict[str, Any]) -> int:
    """Write ``record`` to ``deploy.json`` with the next ``deploy_id``.

    The read-increment-write is not atomic across processes, but deploy
    semantics are last-write-wins desired state, so a lost increment in
    the (rare) race of two simultaneous publishers just coalesces the
    two publishes into one.
    """
    path = scratch / _DEPLOY_NAME
    existing = _read_json(path)
    last = existing.get("deploy_id", 0) if isinstance(existing, dict) else 0
    record = dict(record, deploy_id=int(last) + 1)
    _write_json_atomic(path, record)
    return record["deploy_id"]


def _apply_candidate(service: InferenceService, desired: Optional[dict]) -> None:
    """Converge the worker's candidate slot onto the deploy record's."""
    current = service.lifecycle_status()["candidate"]
    if desired is None:
        if current is not None:
            service.unmount_candidate(publish=False)
        return
    if (
        current is not None
        and current.get("artifact_sha") == desired.get("artifact_sha")
        and current.get("mode") == desired.get("mode")
        and current.get("fraction") == desired.get("fraction")
    ):
        return
    service.mount_candidate(
        desired["artifact"],
        mode=desired.get("mode"),
        fraction=desired.get("fraction"),
        verify=False,  # the publisher verified once, same trust domain
        publish=False,
    )


def _apply_deploy(scratch: Path, service: InferenceService, applied_id: int) -> int:
    """Apply any deploy record newer than ``applied_id``; returns its id.

    Idempotent: the worker that initiated (and already applied) a change
    sees its own record, finds the shas already match, and does nothing.
    A record that fails to apply is still marked applied — retrying a
    broken deploy every flush tick would melt the worker; the next
    *successful* publish supersedes it.
    """
    record = _read_json(scratch / _DEPLOY_NAME)
    if not isinstance(record, dict):
        return applied_id
    deploy_id = int(record.get("deploy_id", 0))
    if deploy_id <= applied_id:
        return applied_id
    try:
        artifact = record.get("artifact")
        if artifact is not None and record.get("artifact_sha") != service.artifact_sha:
            service.reload_artifact(artifact, verify=False, publish=False)
        if "candidate" in record:
            _apply_candidate(service, record["candidate"])
    except Exception:
        traceback.print_exc()
    return deploy_id


class ServePool:
    """Supervisor for a pre-fork pool of model-serving workers.

    Parameters
    ----------
    artifact:
        :mod:`repro.persist` artifact directory.  Verified once here;
        workers load it with ``verify=False`` (and read-only mmap when
        ``config.mmap`` is set).
    config:
        :class:`~repro.serve.config.ServeConfig`; ``config.workers``
        processes are forked.  ``port=0`` resolves to a concrete free
        port before forking, reported by :meth:`start` / ``address``.
    socket_strategy:
        ``"auto"`` (default) picks ``"reuseport"`` where the platform
        supports it, else ``"inherit"``; either name forces that
        strategy (tests exercise both).
    """

    def __init__(
        self,
        artifact: Any,
        config: Optional[ServeConfig] = None,
        *,
        socket_strategy: str = "auto",
    ) -> None:
        if socket_strategy not in ("auto", "reuseport", "inherit"):
            raise ValueError(
                f"socket_strategy must be auto|reuseport|inherit, "
                f"got {socket_strategy!r}"
            )
        self.artifact = str(artifact)
        self.config = config or ServeConfig()
        if socket_strategy == "auto":
            socket_strategy = (
                "reuseport" if hasattr(socket, "SO_REUSEPORT") else "inherit"
            )
        elif socket_strategy == "reuseport" and not hasattr(socket, "SO_REUSEPORT"):
            raise RuntimeError("SO_REUSEPORT is not available on this platform")
        self.socket_strategy = socket_strategy
        # One lock guards all supervisor state shared with the monitor
        # thread (children roster, sockets, lifecycle flags).
        self._lock = threading.Lock()
        self._children: List[int] = []
        self._dead: Dict[int, int] = {}  # pid -> exit status
        self._started = False
        self._stopping = False
        self._ready = False  # restarts only begin after a clean boot
        self._scratch: Optional[Path] = None
        self._socket: Optional[socket.socket] = None  # placeholder or listener
        self._address: Optional[Tuple[str, int]] = None
        self._monitor_thread: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()
        self._resolved: Optional[ServeConfig] = None  # post-bind config
        self._restarts = 0
        self._restart_at = 0.0  # monotonic deadline for the next restart

    # -- address -------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        with self._lock:
            address = self._address
        if address is None:
            raise RuntimeError("pool is not started")
        return address

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- lifecycle -----------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Verify the artifact, bind the shared address, fork the workers.

        Blocks until every worker reports ready (or raises after
        :data:`READY_TIMEOUT_S`, killing any stragglers).
        """
        from repro.persist import verify_artifact

        with self._lock:
            if self._started:
                raise RuntimeError("pool is already started (one-shot lifecycle)")
            self._started = True
        verify_artifact(self.artifact)  # once, streamed; workers skip it
        if self.config.candidate_artifact is not None:
            verify_artifact(self.config.candidate_artifact)
        scratch = Path(tempfile.mkdtemp(prefix="repro-serve-pool-"))
        shared = self._bind_shared_socket()
        host, port = shared.getsockname()[:2]
        resolved = dataclasses.replace(self.config, host=str(host), port=int(port))
        with self._lock:
            self._scratch = scratch
            self._socket = shared
            self._address = (str(host), int(port))
            self._resolved = resolved
        pids = [
            self._fork_worker(resolved, scratch, shared)
            for _ in range(self.config.workers)
        ]
        with self._lock:
            self._children = list(pids)
        thread = threading.Thread(
            target=self._monitor, name="repro-serve-pool-monitor", daemon=True
        )
        with self._lock:
            self._monitor_thread = thread
        thread.start()
        self._await_ready(scratch, pids)
        self._write_roster()
        with self._lock:
            self._ready = True
        return (str(host), int(port))

    def stop(self) -> None:
        """SIGTERM every worker, reap them, release sockets and scratch."""
        with self._lock:
            if not self._started or self._stopping:
                return
            self._stopping = True
            pids = list(self._children)
            shared = self._socket
            scratch = self._scratch
            thread = self._monitor_thread
        self._monitor_stop.set()
        if thread is not None:
            thread.join(timeout=5.0)
        for pid in pids:
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + 10.0
        for pid in pids:
            self._reap(pid, deadline)
        if shared is not None:
            shared.close()
        if scratch is not None:
            import shutil

            shutil.rmtree(scratch, ignore_errors=True)
        with self._lock:
            self._children = []
            self._socket = None

    def serve_forever(self) -> None:
        """Blocking variant for the CLI; Ctrl-C or SIGTERM stops cleanly.

        Starts the pool unless the caller already did (the CLI starts it
        first to print the bound address).  SIGTERM matters beyond
        politeness: init systems, containers, and CI runners stop
        services with it, and a non-interactive shell backgrounding the
        CLI with ``&`` leaves SIGINT ignored (so Ctrl-C semantics never
        exist there at all).  The handler only sets an event — it runs
        on the main thread, possibly mid-critical-section, so it must
        not touch locks.
        """
        with self._lock:
            started = self._started
        if not started:
            self.start()
        shutdown = threading.Event()
        try:
            previous = signal.signal(signal.SIGTERM, lambda *_: shutdown.set())
        except ValueError:  # not the main thread; Ctrl-C still applies
            previous = None
        try:
            while not shutdown.wait(0.5):
                with self._lock:
                    if self._stopping:
                        break
        except KeyboardInterrupt:
            pass
        finally:
            if previous is not None:
                signal.signal(signal.SIGTERM, previous)
            self.stop()

    def __enter__(self) -> "ServePool":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- supervisor internals ------------------------------------------
    def _bind_shared_socket(self) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            if self.socket_strategy == "reuseport":
                # Placeholder: joins the SO_REUSEPORT group to pin the
                # address but never listens, so it receives no
                # connections — workers bind their own listening
                # sockets to the same (host, port).
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
                sock.bind((self.config.host, self.config.port))
            else:
                # Fallback: one listening socket, inherited through fork.
                sock.bind((self.config.host, self.config.port))
                sock.listen(128)
        except OSError:
            sock.close()
            raise
        return sock

    def _fork_worker(
        self, config: ServeConfig, scratch: Path, shared: socket.socket
    ) -> int:
        pid = os.fork()
        if pid:
            return pid
        # -- child ----------------------------------------------------
        try:
            if self.socket_strategy == "inherit":
                listen_socket: Optional[socket.socket] = shared
            else:
                # The placeholder is the supervisor's; keeping it open in
                # the child only leaks an fd per worker.
                shared.close()
                listen_socket = None
            _worker_main(self.artifact, config, scratch, listen_socket)
        except BaseException:
            traceback.print_exc()
            os._exit(1)
        os._exit(0)

    def _await_ready(self, scratch: Path, pids: List[int]) -> None:
        deadline = time.monotonic() + READY_TIMEOUT_S
        pending = set(pids)
        while pending:
            pending = {
                pid for pid in pending if not (scratch / f"ready-{pid}").exists()
            }
            if not pending:
                return
            with self._lock:
                died = [pid for pid in pending if pid in self._dead]
            if died or time.monotonic() > deadline:
                self.stop()
                raise RuntimeError(
                    f"workers {sorted(died) or sorted(pending)} failed to "
                    f"become ready"
                )
            time.sleep(0.02)

    def _reap(self, pid: int, deadline: float) -> None:
        while True:
            try:
                done, status = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:
                return
            if done:
                with self._lock:
                    self._dead[pid] = status
                return
            if time.monotonic() > deadline:
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
                deadline += 5.0
            time.sleep(0.02)

    def _monitor(self) -> None:
        """Reap dead children, restart them, keep the roster current."""
        while not self._monitor_stop.is_set():
            changed = False
            with self._lock:
                live = [pid for pid in self._children if pid not in self._dead]
            for pid in live:
                try:
                    done, status = os.waitpid(pid, os.WNOHANG)
                except ChildProcessError:
                    done, status = pid, -1
                if done:
                    with self._lock:
                        self._dead[pid] = status
                    changed = True
            if changed:
                self._write_roster()
            self._maybe_restart()
            self._monitor_stop.wait(MONITOR_POLL_S)

    def _maybe_restart(self) -> None:
        """Replace one dead worker per backoff window.

        Only after a clean boot (``_ready``): a pool whose workers never
        came up should fail :meth:`start`, not crash-loop.  The backoff
        doubles per replacement (capped at :data:`RESTART_BACKOFF_MAX_S`)
        and :data:`MAX_WORKER_RESTARTS` bounds the pool's lifetime total.
        """
        with self._lock:
            if self._stopping or not self._ready or self._resolved is None:
                return
            dead = [pid for pid in self._children if pid in self._dead]
            if not dead or self._restarts >= MAX_WORKER_RESTARTS:
                return
            if time.monotonic() < self._restart_at:
                return
            pid = dead[0]
            resolved = self._resolved
            scratch = self._scratch
            shared = self._socket
            restarts = self._restarts
        if scratch is None or shared is None:
            return
        new_pid = self._fork_worker(resolved, scratch, shared)
        backoff = min(
            RESTART_BACKOFF_S * (2 ** min(restarts, 6)), RESTART_BACKOFF_MAX_S
        )
        with self._lock:
            self._children[self._children.index(pid)] = new_pid
            self._dead.pop(pid, None)
            self._restarts += 1
            self._restart_at = time.monotonic() + backoff
        record_worker_restart()
        self._flush_supervisor_metrics()
        self._write_roster()

    def _flush_supervisor_metrics(self) -> None:
        """Fold the supervisor's restart counter into the pool metrics.

        The supervisor has no flush loop of its own; its snapshot file
        rides the same ``metrics-*.json`` glob the workers' files do.
        """
        with self._lock:
            scratch = self._scratch
            if self._stopping or scratch is None:
                return
        snap = worker_restarts_snapshot()
        if snap:
            _write_json_atomic(scratch / _SUPERVISOR_METRICS_NAME, snap)

    def _write_roster(self) -> None:
        with self._lock:
            if self._stopping or self._scratch is None:
                return
            scratch = self._scratch
            children = list(self._children)
            dead = sorted(self._dead)
        roster = {
            "status": "ok" if not dead else "degraded",
            "workers": [pid for pid in children if pid not in dead],
            "dead": dead,
            "expected": len(children),
        }
        _write_json_atomic(scratch / _ROSTER_NAME, roster)

    # -- lifecycle fan-out ---------------------------------------------
    def publish_deploy(
        self,
        *,
        artifact: Optional[str] = None,
        candidate: Any = _UNSET,
        verify: bool = True,
    ) -> int:
        """Publish a desired lifecycle state every worker converges onto.

        ``artifact`` hot-swaps the primary; ``candidate`` is a
        ``{"artifact", "mode", "fraction"}`` dict to mount, ``None`` to
        unmount, or omitted to leave the slot untouched.  Artifacts are
        verified here **once**; workers apply with ``verify=False``.
        Returns the published ``deploy_id``.
        """
        from repro.persist import artifact_sha, verify_artifact

        with self._lock:
            scratch = self._scratch
            started = self._started and not self._stopping
        if scratch is None or not started:
            raise RuntimeError("pool is not started")
        record: Dict[str, Any] = {}
        if artifact is not None:
            if verify:
                verify_artifact(artifact)
            record["artifact"] = str(artifact)
            record["artifact_sha"] = artifact_sha(artifact)
        if candidate is not _UNSET:
            if candidate is None:
                record["candidate"] = None
            else:
                desired = dict(candidate)
                if "artifact" not in desired:
                    raise ValueError('candidate needs an "artifact" path')
                if verify:
                    verify_artifact(desired["artifact"])
                desired.setdefault(
                    "artifact_sha", artifact_sha(desired["artifact"])
                )
                record["candidate"] = desired
        return _publish_deploy_record(scratch, record)

    # -- introspection -------------------------------------------------
    def worker_pids(self) -> List[int]:
        with self._lock:
            return [pid for pid in self._children if pid not in self._dead]

    def restart_count(self) -> int:
        """Workers replaced since start (see ``serve.worker_restarts``)."""
        with self._lock:
            return self._restarts


def _worker_main(
    artifact: str,
    config: ServeConfig,
    scratch: Path,
    listen_socket: Optional[socket.socket],
) -> None:
    """Body of one forked worker; never returns (``os._exit`` on exit).

    Loads the artifact read-only (no re-verification — the supervisor
    already streamed the checksums), serves it over the shared address,
    and periodically snapshots its metrics into the scratch directory.
    """
    # Fresh metrics: anything inherited through fork would be merged
    # once per worker and over-count in the pool-wide aggregation.
    REGISTRY.reset()
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    # Ctrl-C goes to the whole process group; the supervisor turns it
    # into SIGTERM per worker, so workers ignore the raw SIGINT.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    service = InferenceService.from_artifact(artifact, config, verify=False)
    if config.candidate_artifact is not None:
        # The supervisor verified the configured candidate before forking.
        service.mount_candidate(
            config.candidate_artifact, verify=False, publish=False
        )

    def pool_metrics() -> str:
        _flush_metrics(scratch)  # our own counts first, then everyone's
        return _aggregate_metrics(scratch)

    def pool_publish(
        *, artifact: Optional[str], artifact_sha: Optional[str], candidate: Any
    ) -> None:
        # An admin request lands on whichever worker the kernel picked;
        # that worker has already applied the change locally and here
        # publishes its (fully known) state for the siblings.
        record: Dict[str, Any] = {"candidate": candidate}
        if artifact is not None:
            record["artifact"] = artifact
            record["artifact_sha"] = artifact_sha
        _publish_deploy_record(scratch, record)

    service.pool_ready = lambda: _pool_ready(scratch)
    service.pool_metrics = pool_metrics
    service.pool_publish = pool_publish
    server = ModelServer(
        service,
        config,
        reuse_port=listen_socket is None,
        listen_socket=listen_socket,
    )
    server.start()
    # Catch up on any deploy published before this worker existed (a
    # restarted worker boots from the original artifact path).
    applied = _apply_deploy(scratch, service, 0)
    _flush_metrics(scratch)
    (scratch / f"ready-{os.getpid()}").touch()
    while not stop.wait(FLUSH_PERIOD_S):
        _flush_metrics(scratch)
        applied = _apply_deploy(scratch, service, applied)
    server.stop()
    _flush_metrics(scratch)
    sys.stderr.flush()


__all__ = ["ServePool"]
