"""Pre-fork multi-worker serving pool over a shared-memory artifact (PR 9).

:class:`ServePool` is the supervisor: it verifies the artifact **once**
(:func:`repro.persist.verify_artifact`, one streamed SHA-256 pass), then
forks ``config.workers`` worker processes.  Each worker loads the same
artifact read-only — with ``config.mmap`` the packed payload arrays are
``np.load(..., mmap_mode="r")`` maps, so every worker shares one set of
physical pages instead of copying the store — and runs the standard
:class:`~repro.serve.http.ModelServer` accept loop.

Socket sharing
--------------
Two strategies, picked automatically:

* ``reuseport`` (default where available): every worker binds its own
  socket to the same address with ``SO_REUSEPORT`` set and the kernel
  load-balances incoming connections across them.  The supervisor keeps
  a bound-but-not-listening placeholder socket in the same reuse group,
  which pins the address (and resolves ``port=0`` to a concrete port
  before any worker forks) without ever receiving connections.
* ``inherit`` (fallback): the supervisor binds + listens once before
  forking and every worker accepts on the inherited file descriptor.

Cross-worker observability
--------------------------
Workers periodically snapshot their process-local metrics registry into
a shared scratch directory; answering ``GET /metrics`` flushes the local
snapshot and folds every worker's file through
:meth:`repro.obs.metrics.MetricsRegistry.merge` (counters/histograms
add, gauges last-write-wins), so any worker renders the pool-wide view.

Aggregated readiness
--------------------
The supervisor maintains a roster file (``pool.json``) and reaps dead
children from a monitor thread; every worker's ``GET /readyz`` checks
the roster (plus a direct liveness probe of its siblings), so one dead
worker turns the whole pool's ``/readyz`` 503 even though the kernel
still happily routes connections to the survivors.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import socket
import sys
import tempfile
import threading
import time
import traceback
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.export import to_prometheus
from repro.serve.config import ServeConfig
from repro.serve.http import ModelServer
from repro.serve.service import InferenceService

#: How long ServePool.start() waits for every worker's ready marker.
READY_TIMEOUT_S = 30.0
#: Supervisor monitor-thread poll period (child reaping + roster refresh).
MONITOR_POLL_S = 0.1
#: Worker metrics-snapshot flush period.
FLUSH_PERIOD_S = 0.5

_ROSTER_NAME = "pool.json"


def _write_json_atomic(path: Path, payload: Any) -> None:
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
    )
    tmp.write_text(json.dumps(payload, sort_keys=True))
    os.replace(tmp, path)


def _read_json(path: Path) -> Optional[Any]:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, different user
        return True
    return True


# ----------------------------------------------------------------------
# Worker-side hooks (run inside forked children)
# ----------------------------------------------------------------------
def _metrics_path(scratch: Path, pid: int) -> Path:
    return scratch / f"metrics-{pid}.json"


def _flush_metrics(scratch: Path) -> None:
    _write_json_atomic(_metrics_path(scratch, os.getpid()), REGISTRY.collect())


def _aggregate_metrics(scratch: Path) -> str:
    """Pool-wide Prometheus exposition: merge every worker's snapshot."""
    merged = MetricsRegistry()
    for path in sorted(scratch.glob("metrics-*.json")):
        snap = _read_json(path)
        if isinstance(snap, dict):
            merged.merge(snap)
    return to_prometheus(registry=merged)


def _pool_ready(scratch: Path) -> Tuple[bool, Any]:
    """Aggregated readiness: the roster says ok AND every sibling is alive."""
    roster = _read_json(scratch / _ROSTER_NAME)
    if not isinstance(roster, dict):
        return False, {"reason": "pool roster not written yet"}
    if roster.get("status") != "ok":
        return False, roster
    dead = [pid for pid in roster.get("workers", []) if not _pid_alive(pid)]
    if dead:
        # Faster than waiting for the supervisor's next reap cycle.
        return False, {"reason": "worker died", "dead": dead}
    return True, roster


class ServePool:
    """Supervisor for a pre-fork pool of model-serving workers.

    Parameters
    ----------
    artifact:
        :mod:`repro.persist` artifact directory.  Verified once here;
        workers load it with ``verify=False`` (and read-only mmap when
        ``config.mmap`` is set).
    config:
        :class:`~repro.serve.config.ServeConfig`; ``config.workers``
        processes are forked.  ``port=0`` resolves to a concrete free
        port before forking, reported by :meth:`start` / ``address``.
    socket_strategy:
        ``"auto"`` (default) picks ``"reuseport"`` where the platform
        supports it, else ``"inherit"``; either name forces that
        strategy (tests exercise both).
    """

    def __init__(
        self,
        artifact: Any,
        config: Optional[ServeConfig] = None,
        *,
        socket_strategy: str = "auto",
    ) -> None:
        if socket_strategy not in ("auto", "reuseport", "inherit"):
            raise ValueError(
                f"socket_strategy must be auto|reuseport|inherit, "
                f"got {socket_strategy!r}"
            )
        self.artifact = str(artifact)
        self.config = config or ServeConfig()
        if socket_strategy == "auto":
            socket_strategy = (
                "reuseport" if hasattr(socket, "SO_REUSEPORT") else "inherit"
            )
        elif socket_strategy == "reuseport" and not hasattr(socket, "SO_REUSEPORT"):
            raise RuntimeError("SO_REUSEPORT is not available on this platform")
        self.socket_strategy = socket_strategy
        # One lock guards all supervisor state shared with the monitor
        # thread (children roster, sockets, lifecycle flags).
        self._lock = threading.Lock()
        self._children: List[int] = []
        self._dead: Dict[int, int] = {}  # pid -> exit status
        self._started = False
        self._stopping = False
        self._scratch: Optional[Path] = None
        self._socket: Optional[socket.socket] = None  # placeholder or listener
        self._address: Optional[Tuple[str, int]] = None
        self._monitor_thread: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()

    # -- address -------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        with self._lock:
            address = self._address
        if address is None:
            raise RuntimeError("pool is not started")
        return address

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- lifecycle -----------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Verify the artifact, bind the shared address, fork the workers.

        Blocks until every worker reports ready (or raises after
        :data:`READY_TIMEOUT_S`, killing any stragglers).
        """
        from repro.persist import verify_artifact

        with self._lock:
            if self._started:
                raise RuntimeError("pool is already started (one-shot lifecycle)")
            self._started = True
        verify_artifact(self.artifact)  # once, streamed; workers skip it
        scratch = Path(tempfile.mkdtemp(prefix="repro-serve-pool-"))
        shared = self._bind_shared_socket()
        host, port = shared.getsockname()[:2]
        resolved = dataclasses.replace(self.config, host=str(host), port=int(port))
        with self._lock:
            self._scratch = scratch
            self._socket = shared
            self._address = (str(host), int(port))
        pids = [
            self._fork_worker(resolved, scratch, shared)
            for _ in range(self.config.workers)
        ]
        with self._lock:
            self._children = list(pids)
        thread = threading.Thread(
            target=self._monitor, name="repro-serve-pool-monitor", daemon=True
        )
        with self._lock:
            self._monitor_thread = thread
        thread.start()
        self._await_ready(scratch, pids)
        self._write_roster()
        return (str(host), int(port))

    def stop(self) -> None:
        """SIGTERM every worker, reap them, release sockets and scratch."""
        with self._lock:
            if not self._started or self._stopping:
                return
            self._stopping = True
            pids = list(self._children)
            shared = self._socket
            scratch = self._scratch
            thread = self._monitor_thread
        self._monitor_stop.set()
        if thread is not None:
            thread.join(timeout=5.0)
        for pid in pids:
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + 10.0
        for pid in pids:
            self._reap(pid, deadline)
        if shared is not None:
            shared.close()
        if scratch is not None:
            import shutil

            shutil.rmtree(scratch, ignore_errors=True)
        with self._lock:
            self._children = []
            self._socket = None

    def serve_forever(self) -> None:
        """Blocking variant for the CLI; Ctrl-C stops the pool cleanly.

        Starts the pool unless the caller already did (the CLI starts it
        first to print the bound address).
        """
        with self._lock:
            started = self._started
        if not started:
            self.start()
        try:
            while True:
                time.sleep(0.5)
                with self._lock:
                    if self._stopping:
                        break
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def __enter__(self) -> "ServePool":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- supervisor internals ------------------------------------------
    def _bind_shared_socket(self) -> socket.socket:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            if self.socket_strategy == "reuseport":
                # Placeholder: joins the SO_REUSEPORT group to pin the
                # address but never listens, so it receives no
                # connections — workers bind their own listening
                # sockets to the same (host, port).
                sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
                sock.bind((self.config.host, self.config.port))
            else:
                # Fallback: one listening socket, inherited through fork.
                sock.bind((self.config.host, self.config.port))
                sock.listen(128)
        except OSError:
            sock.close()
            raise
        return sock

    def _fork_worker(
        self, config: ServeConfig, scratch: Path, shared: socket.socket
    ) -> int:
        pid = os.fork()
        if pid:
            return pid
        # -- child ----------------------------------------------------
        try:
            if self.socket_strategy == "inherit":
                listen_socket: Optional[socket.socket] = shared
            else:
                # The placeholder is the supervisor's; keeping it open in
                # the child only leaks an fd per worker.
                shared.close()
                listen_socket = None
            _worker_main(self.artifact, config, scratch, listen_socket)
        except BaseException:
            traceback.print_exc()
            os._exit(1)
        os._exit(0)

    def _await_ready(self, scratch: Path, pids: List[int]) -> None:
        deadline = time.monotonic() + READY_TIMEOUT_S
        pending = set(pids)
        while pending:
            pending = {
                pid for pid in pending if not (scratch / f"ready-{pid}").exists()
            }
            if not pending:
                return
            with self._lock:
                died = [pid for pid in pending if pid in self._dead]
            if died or time.monotonic() > deadline:
                self.stop()
                raise RuntimeError(
                    f"workers {sorted(died) or sorted(pending)} failed to "
                    f"become ready"
                )
            time.sleep(0.02)

    def _reap(self, pid: int, deadline: float) -> None:
        while True:
            try:
                done, status = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:
                return
            if done:
                with self._lock:
                    self._dead[pid] = status
                return
            if time.monotonic() > deadline:
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
                deadline += 5.0
            time.sleep(0.02)

    def _monitor(self) -> None:
        """Reap dead children and keep the roster file current."""
        while not self._monitor_stop.is_set():
            changed = False
            with self._lock:
                live = [pid for pid in self._children if pid not in self._dead]
            for pid in live:
                try:
                    done, status = os.waitpid(pid, os.WNOHANG)
                except ChildProcessError:
                    done, status = pid, -1
                if done:
                    with self._lock:
                        self._dead[pid] = status
                    changed = True
            if changed:
                self._write_roster()
            self._monitor_stop.wait(MONITOR_POLL_S)

    def _write_roster(self) -> None:
        with self._lock:
            if self._stopping or self._scratch is None:
                return
            scratch = self._scratch
            children = list(self._children)
            dead = sorted(self._dead)
        roster = {
            "status": "ok" if not dead else "degraded",
            "workers": [pid for pid in children if pid not in dead],
            "dead": dead,
            "expected": len(children),
        }
        _write_json_atomic(scratch / _ROSTER_NAME, roster)

    # -- introspection -------------------------------------------------
    def worker_pids(self) -> List[int]:
        with self._lock:
            return [pid for pid in self._children if pid not in self._dead]


def _worker_main(
    artifact: str,
    config: ServeConfig,
    scratch: Path,
    listen_socket: Optional[socket.socket],
) -> None:
    """Body of one forked worker; never returns (``os._exit`` on exit).

    Loads the artifact read-only (no re-verification — the supervisor
    already streamed the checksums), serves it over the shared address,
    and periodically snapshots its metrics into the scratch directory.
    """
    # Fresh metrics: anything inherited through fork would be merged
    # once per worker and over-count in the pool-wide aggregation.
    REGISTRY.reset()
    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    # Ctrl-C goes to the whole process group; the supervisor turns it
    # into SIGTERM per worker, so workers ignore the raw SIGINT.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    service = InferenceService.from_artifact(artifact, config, verify=False)

    def pool_metrics() -> str:
        _flush_metrics(scratch)  # our own counts first, then everyone's
        return _aggregate_metrics(scratch)

    service.pool_ready = lambda: _pool_ready(scratch)
    service.pool_metrics = pool_metrics
    server = ModelServer(
        service,
        config,
        reuse_port=listen_socket is None,
        listen_socket=listen_socket,
    )
    server.start()
    _flush_metrics(scratch)
    (scratch / f"ready-{os.getpid()}").touch()
    while not stop.wait(FLUSH_PERIOD_S):
        _flush_metrics(scratch)
    server.stop()
    _flush_metrics(scratch)
    sys.stderr.flush()


__all__ = ["ServePool"]
