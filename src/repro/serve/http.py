"""HTTP front-end: a stdlib ThreadingHTTPServer around the service.

Endpoints:

* ``POST /predict`` — body ``{"rows": [[...], ...]}``; responds
  ``{"predictions": [...], "n": k}``.  Handler threads block on the
  micro-batcher, so concurrent requests are fused into shared flushes.
* ``GET /healthz`` — process liveness (always 200 while the server runs).
* ``GET /readyz`` — 200 with the model summary once the service is
  started, 503 before/after.
* ``GET /metrics`` — Prometheus text exposition via
  :func:`repro.obs.export.to_prometheus`, including the ``serve.*``
  counters/histograms (queue depth, batch size, request latency).

No web framework, no dependencies: :class:`ModelServer` is deployable
anywhere the package itself runs.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple

from repro.obs.export import to_prometheus
from repro.serve.batcher import QueueFullError
from repro.serve.config import ServeConfig
from repro.serve.service import (
    InferenceService,
    NotReadyError,
    PayloadTooLargeError,
    ServeError,
    ValidationError,
)

_MAX_BODY_BYTES = 8 * 1024 * 1024  # hard cap before JSON parsing


def _kernel_info_lines() -> str:
    """Info-style gauge advertising the active kernel backend."""
    from repro.kernels import active_backend

    return (
        "# HELP repro_kernel_backend_info Active compute kernel backend.\n"
        "# TYPE repro_kernel_backend_info gauge\n"
        f'repro_kernel_backend_info{{backend="{active_backend()}"}} 1\n'
    )


def _make_handler(service: InferenceService, config: ServeConfig):
    class _Handler(BaseHTTPRequestHandler):
        server_version = "repro-serve"
        protocol_version = "HTTP/1.1"

        # -- plumbing --------------------------------------------------
        def log_message(self, fmt: str, *args: Any) -> None:
            if config.log_requests:
                BaseHTTPRequestHandler.log_message(self, fmt, *args)

        def _send(self, status: int, body: bytes, content_type: str) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_json(self, status: int, payload: Any) -> None:
            self._send(
                status,
                json.dumps(payload).encode("utf-8"),
                "application/json; charset=utf-8",
            )

        def _send_error_json(self, status: int, message: str) -> None:
            self._send_json(status, {"error": message})

        # -- GET -------------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
            path = self.path.split("?", 1)[0]
            if path == "/healthz":
                self._send(200, b"ok\n", "text/plain; charset=utf-8")
            elif path == "/readyz":
                if service.ready:
                    self._send_json(200, service.describe())
                else:
                    self._send_error_json(503, "model is not loaded")
            elif path == "/metrics":
                body = to_prometheus() + _kernel_info_lines()
                self._send(
                    200,
                    body.encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            else:
                self._send_error_json(404, f"unknown path {path!r}")

        # -- POST ------------------------------------------------------
        def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
            path = self.path.split("?", 1)[0]
            if path != "/predict":
                self._send_error_json(404, f"unknown path {path!r}")
                return
            try:
                length = int(self.headers.get("Content-Length", 0))
            except ValueError:
                self._send_error_json(400, "invalid Content-Length")
                return
            if length <= 0:
                self._send_error_json(400, "empty request body")
                return
            if length > _MAX_BODY_BYTES:
                self._send_error_json(413, "request body too large")
                return
            try:
                payload = json.loads(self.rfile.read(length).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self._send_error_json(400, f"body is not valid JSON: {exc}")
                return
            if not isinstance(payload, dict) or "rows" not in payload:
                self._send_error_json(400, 'body must be {"rows": [[...], ...]}')
                return
            try:
                predictions = service.predict(payload["rows"])
            except ValidationError as exc:
                self._send_error_json(400, str(exc))
            except PayloadTooLargeError as exc:
                self._send_error_json(413, str(exc))
            except QueueFullError as exc:
                self._send_error_json(429, str(exc))
            except NotReadyError as exc:
                self._send_error_json(503, str(exc))
            except ServeError as exc:
                self._send_error_json(500, str(exc))
            else:
                self._send_json(
                    200, {"predictions": predictions, "n": len(predictions)}
                )

    return _Handler


class ModelServer:
    """Bind an :class:`InferenceService` to a threaded HTTP server.

    ``model`` may be a fitted estimator/pipeline or an already-built
    :class:`InferenceService`.  :meth:`start` is non-blocking (the accept
    loop runs on a daemon thread); use :meth:`serve_forever` from a CLI.
    """

    def __init__(
        self, model: Any, config: Optional[ServeConfig] = None
    ) -> None:
        if isinstance(model, InferenceService):
            self.service = model
            self.config = config or model.config
        else:
            self.config = config or ServeConfig()
            self.service = InferenceService(model, self.config)
        # Guards _httpd/_thread: start/stop/address may race (a CLI's
        # signal handler stopping while serve_forever is still starting).
        self._lifecycle = threading.Lock()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @classmethod
    def from_artifact(
        cls, path: Any, config: Optional[ServeConfig] = None
    ) -> "ModelServer":
        """Load a :mod:`repro.persist` artifact directory and serve it."""
        return cls(InferenceService.from_artifact(path, config), config)

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """Bound ``(host, port)``; resolves ``port=0`` to the real port."""
        with self._lifecycle:
            httpd = self._httpd
        if httpd is None:
            raise RuntimeError("server is not started")
        host, port = httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> Tuple[str, int]:
        with self._lifecycle:
            if self._httpd is None:
                self.service.start()
                httpd = ThreadingHTTPServer(
                    (self.config.host, self.config.port),
                    _make_handler(self.service, self.config),
                )
                httpd.daemon_threads = True
                self._httpd = httpd
                self._thread = threading.Thread(
                    target=httpd.serve_forever,
                    name="repro-serve-http",
                    daemon=True,
                )
                self._thread.start()
        return self.address

    def stop(self) -> None:
        with self._lifecycle:
            httpd = self._httpd
            thread = self._thread
            self._httpd = None
            self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
        self.service.stop()

    def serve_forever(self) -> None:
        """Blocking variant for the CLI; Ctrl-C stops cleanly."""
        self.start()
        with self._lifecycle:
            thread = self._thread
        assert thread is not None
        try:
            while thread.is_alive():
                thread.join(timeout=0.5)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def __enter__(self) -> "ModelServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


__all__ = ["ModelServer"]
