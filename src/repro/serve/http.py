"""HTTP front-end: a stdlib ThreadingHTTPServer around the service.

Endpoints:

* ``POST /v1/predict`` — the versioned API (PR 9).  Body
  ``{"rows": [[...], ...], "request_id": "..."}`` (``request_id``
  optional); responds ``{"predictions": [...], "n": k, "model":
  {"kind", "schema_version", "artifact_sha"}, "request_id": ...}``.
* ``POST /predict`` — deprecated alias of ``/v1/predict`` kept for
  pre-PR-9 clients: same request schema, legacy response shape
  ``{"predictions": [...], "n": k}``, a ``Deprecation: true`` header
  plus a ``Link: </v1/predict>; rel="successor-version"`` pointer, and
  a bump of the ``serve.deprecated_requests`` counter.
* ``GET /healthz`` — process liveness (always 200 while the server runs).
* ``GET /readyz`` — 200 with the model summary once the service is
  started, 503 before/after.  Under a pool
  (:mod:`repro.serve.pool`) readiness is aggregated across workers:
  any dead worker turns every worker's ``/readyz`` 503.
* ``GET /metrics`` — Prometheus text exposition via
  :func:`repro.obs.export.to_prometheus`, including the ``serve.*``
  counters/histograms (queue depth, batch size, request latency).

Errors are structured (PR 9): every non-2xx body is
``{"error": {"code", "message", "detail"}}`` with a stable
machine-readable ``code`` (see the table in DESIGN.md §12).

No web framework, no dependencies: :class:`ModelServer` is deployable
anywhere the package itself runs.
"""

from __future__ import annotations

import json
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple

from repro.obs.export import to_prometheus
from repro.serve.batcher import QueueFullError
from repro.serve.config import ServeConfig
from repro.serve.metrics import record_deprecated
from repro.serve.service import (
    InferenceService,
    NotReadyError,
    PayloadTooLargeError,
    ServeError,
    ValidationError,
)

_MAX_BODY_BYTES = 8 * 1024 * 1024  # hard cap before JSON parsing


def _kernel_info_lines() -> str:
    """Info-style gauge advertising the active kernel backend."""
    from repro.kernels import active_backend

    return (
        "# HELP repro_kernel_backend_info Active compute kernel backend.\n"
        "# TYPE repro_kernel_backend_info gauge\n"
        f'repro_kernel_backend_info{{backend="{active_backend()}"}} 1\n'
    )


class _ReusePortHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that binds with ``SO_REUSEPORT`` set.

    Every pool worker binds its own socket to the same address; the
    kernel then load-balances incoming connections across them.
    """

    def server_bind(self) -> None:
        self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        ThreadingHTTPServer.server_bind(self)


class _InheritedSocketHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer accepting on a pre-bound, listening socket.

    The ``SO_REUSEPORT`` fallback: the pool supervisor binds + listens
    once before forking and every worker accepts on the inherited fd.
    """

    def __init__(self, listen_socket: socket.socket, handler_class) -> None:
        ThreadingHTTPServer.__init__(
            self,
            listen_socket.getsockname()[:2],
            handler_class,
            bind_and_activate=False,
        )
        self.socket.close()
        self.socket = listen_socket
        self.server_address = listen_socket.getsockname()[:2]

    def server_bind(self) -> None:  # pragma: no cover - never called
        raise RuntimeError("inherited socket is already bound")

    def server_close(self) -> None:
        # The supervisor owns the listening socket; closing it here would
        # kill the other workers' accept loops too.
        pass


def _make_handler(service: InferenceService, config: ServeConfig):
    class _Handler(BaseHTTPRequestHandler):
        server_version = "repro-serve"
        protocol_version = "HTTP/1.1"

        # -- plumbing --------------------------------------------------
        def log_message(self, fmt: str, *args: Any) -> None:
            if config.log_requests:
                BaseHTTPRequestHandler.log_message(self, fmt, *args)

        def _send(
            self,
            status: int,
            body: bytes,
            content_type: str,
            extra_headers: Optional[dict] = None,
        ) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in (extra_headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _send_json(
            self,
            status: int,
            payload: Any,
            extra_headers: Optional[dict] = None,
        ) -> None:
            self._send(
                status,
                json.dumps(payload).encode("utf-8"),
                "application/json; charset=utf-8",
                extra_headers,
            )

        def _send_error_json(
            self,
            status: int,
            code: str,
            message: str,
            detail: Any = None,
            extra_headers: Optional[dict] = None,
        ) -> None:
            self._send_json(
                status,
                {"error": {"code": code, "message": message, "detail": detail}},
                extra_headers,
            )

        # -- GET -------------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
            path = self.path.split("?", 1)[0]
            if path == "/healthz":
                self._send(200, b"ok\n", "text/plain; charset=utf-8")
            elif path == "/readyz":
                if not service.ready:
                    self._send_error_json(503, "not_ready", "model is not loaded")
                    return
                pool_check = getattr(service, "pool_ready", None)
                if pool_check is not None:
                    ok, detail = pool_check()
                    if not ok:
                        self._send_error_json(
                            503, "pool_degraded", "worker pool is degraded", detail
                        )
                        return
                self._send_json(200, service.describe())
            elif path == "/metrics":
                collect = getattr(service, "pool_metrics", None)
                body = (
                    to_prometheus() if collect is None else collect()
                ) + _kernel_info_lines()
                self._send(
                    200,
                    body.encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            else:
                self._send_error_json(404, "not_found", f"unknown path {path!r}")

        # -- POST ------------------------------------------------------
        def _read_predict_payload(self) -> Optional[dict]:
            """Parse + schema-check the request body; None means an error
            response has already been sent."""
            try:
                length = int(self.headers.get("Content-Length", 0))
            except ValueError:
                self._send_error_json(
                    400, "invalid_request", "invalid Content-Length"
                )
                return None
            if length <= 0:
                self._send_error_json(400, "invalid_request", "empty request body")
                return None
            if length > _MAX_BODY_BYTES:
                self._send_error_json(
                    413, "payload_too_large", "request body too large",
                    {"max_bytes": _MAX_BODY_BYTES},
                )
                return None
            try:
                payload = json.loads(self.rfile.read(length).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self._send_error_json(
                    400, "invalid_request", f"body is not valid JSON: {exc}"
                )
                return None
            if not isinstance(payload, dict) or "rows" not in payload:
                self._send_error_json(
                    400, "invalid_request",
                    'body must be {"rows": [[...], ...]}',
                )
                return None
            request_id = payload.get("request_id")
            if request_id is not None and not isinstance(request_id, str):
                self._send_error_json(
                    400, "invalid_request", "request_id must be a string",
                    {"got": type(request_id).__name__},
                )
                return None
            return payload

        def _predict(self, payload: dict) -> Optional[list]:
            """Run the service; None means an error response was sent."""
            try:
                return service.predict(payload["rows"])
            except QueueFullError as exc:
                self._send_error_json(429, "queue_full", str(exc))
            except (
                ValidationError,
                PayloadTooLargeError,
                NotReadyError,
            ) as exc:
                status = {
                    "invalid_request": 400,
                    "payload_too_large": 413,
                    "not_ready": 503,
                }[exc.code]
                self._send_error_json(status, exc.code, str(exc))
            except ServeError as exc:
                self._send_error_json(500, exc.code, str(exc))
            return None

        def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
            path = self.path.split("?", 1)[0]
            if path == "/v1/predict":
                payload = self._read_predict_payload()
                if payload is None:
                    return
                predictions = self._predict(payload)
                if predictions is None:
                    return
                self._send_json(
                    200,
                    {
                        "predictions": predictions,
                        "n": len(predictions),
                        "model": service.model_info(),
                        "request_id": payload.get("request_id"),
                    },
                )
            elif path == "/predict":
                record_deprecated()
                deprecation_headers = {
                    "Deprecation": "true",
                    "Link": '</v1/predict>; rel="successor-version"',
                }
                payload = self._read_predict_payload()
                if payload is None:
                    return
                predictions = self._predict(payload)
                if predictions is None:
                    return
                self._send_json(
                    200,
                    {"predictions": predictions, "n": len(predictions)},
                    deprecation_headers,
                )
            else:
                self._send_error_json(404, "not_found", f"unknown path {path!r}")

    return _Handler


class ModelServer:
    """Bind an :class:`InferenceService` to a threaded HTTP server.

    ``model`` may be a fitted estimator/pipeline or an already-built
    :class:`InferenceService`.  :meth:`start` is non-blocking (the accept
    loop runs on a daemon thread); use :meth:`serve_forever` from a CLI.

    Pool hooks (PR 9): ``reuse_port=True`` binds with ``SO_REUSEPORT``
    so several processes can share one address; ``listen_socket=...``
    accepts on a socket the pool supervisor bound before forking (the
    fallback when ``SO_REUSEPORT`` is unavailable).
    """

    def __init__(
        self,
        model: Any,
        config: Optional[ServeConfig] = None,
        *,
        reuse_port: bool = False,
        listen_socket: Optional[socket.socket] = None,
    ) -> None:
        if isinstance(model, InferenceService):
            self.service = model
            self.config = config or model.config
        else:
            self.config = config or ServeConfig()
            self.service = InferenceService(model, self.config)
        self._reuse_port = reuse_port
        self._listen_socket = listen_socket
        # Guards _httpd/_thread: start/stop/address may race (a CLI's
        # signal handler stopping while serve_forever is still starting).
        self._lifecycle = threading.Lock()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @classmethod
    def from_artifact(
        cls, path: Any, config: Optional[ServeConfig] = None
    ) -> "ModelServer":
        """Load a :mod:`repro.persist` artifact directory and serve it."""
        return cls(InferenceService.from_artifact(path, config), config)

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """Bound ``(host, port)``; resolves ``port=0`` to the real port."""
        with self._lifecycle:
            httpd = self._httpd
        if httpd is None:
            raise RuntimeError("server is not started")
        host, port = httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def _build_httpd(self) -> ThreadingHTTPServer:
        handler = _make_handler(self.service, self.config)
        if self._listen_socket is not None:
            return _InheritedSocketHTTPServer(self._listen_socket, handler)
        server_cls = (
            _ReusePortHTTPServer if self._reuse_port else ThreadingHTTPServer
        )
        return server_cls((self.config.host, self.config.port), handler)

    def start(self) -> Tuple[str, int]:
        with self._lifecycle:
            if self._httpd is None:
                self.service.start()
                httpd = self._build_httpd()
                httpd.daemon_threads = True
                self._httpd = httpd
                self._thread = threading.Thread(
                    target=httpd.serve_forever,
                    name="repro-serve-http",
                    daemon=True,
                )
                self._thread.start()
        return self.address

    def stop(self) -> None:
        with self._lifecycle:
            httpd = self._httpd
            thread = self._thread
            self._httpd = None
            self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
        self.service.stop()

    def serve_forever(self) -> None:
        """Blocking variant for the CLI; Ctrl-C stops cleanly."""
        self.start()
        with self._lifecycle:
            thread = self._thread
        assert thread is not None
        try:
            while thread.is_alive():
                thread.join(timeout=0.5)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    def __enter__(self) -> "ModelServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


__all__ = ["ModelServer"]
