"""HTTP front-end: a stdlib ThreadingHTTPServer around the service.

Endpoints:

* ``POST /v1/predict`` — the versioned API (PR 9).  Body
  ``{"rows": [[...], ...], "request_id": "..."}`` (``request_id``
  optional); responds ``{"predictions": [...], "n": k, "model":
  {"kind", "schema_version", "artifact_sha"}, "request_id": ...}``.
* ``POST /predict`` — deprecated alias of ``/v1/predict`` kept for
  pre-PR-9 clients: same request schema, legacy response shape
  ``{"predictions": [...], "n": k}``, a ``Deprecation: true`` header
  plus a ``Link: </v1/predict>; rel="successor-version"`` pointer, and
  a bump of the ``serve.deprecated_requests`` counter.
* ``GET /healthz`` — process liveness (always 200 while the server runs).
* ``GET /readyz`` — 200 with the model summary once the service is
  started, 503 before/after.  Under a pool
  (:mod:`repro.serve.pool`) readiness is aggregated across workers:
  any dead worker turns every worker's ``/readyz`` 503.
* ``GET /metrics`` — Prometheus text exposition via
  :func:`repro.obs.export.to_prometheus`, including the ``serve.*``
  counters/histograms (queue depth, batch size, request latency) and the
  ``lifecycle.*`` series (reloads, shadow agreement, drift).

Admin endpoints (PR 10, the live model lifecycle):

* ``POST /v1/admin/reload`` — hot-swap the primary from an artifact
  directory (body ``{"artifact": "path"}``; empty body re-reads the
  artifact the primary was loaded from).
* ``POST /v1/admin/candidate`` — mount (``{"artifact", "mode",
  "fraction"}``), ``{"action": "unmount"}`` or ``{"action": "promote"}``
  the shadow/A-B candidate.
* ``POST /v1/admin/feedback`` — labelled follow-up rows (``{"rows",
  "labels"}``) for the continual trainer, or ``{"build": "path"}`` to
  snapshot it as a candidate artifact.
* ``GET /v1/admin/lifecycle`` — routing/drift/follow-up status.

Errors are structured (PR 9): every non-2xx body is
``{"error": {"code", "message", "detail"}}`` with a stable
machine-readable ``code`` (see the table in DESIGN.md §12).

No web framework, no dependencies: :class:`ModelServer` is deployable
anywhere the package itself runs.
"""

from __future__ import annotations

import json
import signal
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple

from repro.obs.export import to_prometheus
from repro.serve.batcher import QueueFullError
from repro.serve.config import ServeConfig
from repro.serve.metrics import record_deprecated, record_error
from repro.serve.service import (
    InferenceService,
    NotReadyError,
    PayloadTooLargeError,
    ReloadError,
    ServeError,
    ValidationError,
)

_MAX_BODY_BYTES = 8 * 1024 * 1024  # hard cap before JSON parsing


def _kernel_info_lines() -> str:
    """Info-style gauge advertising the active kernel backend."""
    from repro.kernels import active_backend

    return (
        "# HELP repro_kernel_backend_info Active compute kernel backend.\n"
        "# TYPE repro_kernel_backend_info gauge\n"
        f'repro_kernel_backend_info{{backend="{active_backend()}"}} 1\n'
    )


class _ReusePortHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that binds with ``SO_REUSEPORT`` set.

    Every pool worker binds its own socket to the same address; the
    kernel then load-balances incoming connections across them.
    """

    def server_bind(self) -> None:
        self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        ThreadingHTTPServer.server_bind(self)


class _InheritedSocketHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer accepting on a pre-bound, listening socket.

    The ``SO_REUSEPORT`` fallback: the pool supervisor binds + listens
    once before forking and every worker accepts on the inherited fd.
    """

    def __init__(self, listen_socket: socket.socket, handler_class) -> None:
        ThreadingHTTPServer.__init__(
            self,
            listen_socket.getsockname()[:2],
            handler_class,
            bind_and_activate=False,
        )
        self.socket.close()
        self.socket = listen_socket
        self.server_address = listen_socket.getsockname()[:2]

    def server_bind(self) -> None:  # pragma: no cover - never called
        raise RuntimeError("inherited socket is already bound")

    def server_close(self) -> None:
        # The supervisor owns the listening socket; closing it here would
        # kill the other workers' accept loops too.
        pass


def _make_handler(service: InferenceService, config: ServeConfig):
    class _Handler(BaseHTTPRequestHandler):
        server_version = "repro-serve"
        protocol_version = "HTTP/1.1"

        # -- plumbing --------------------------------------------------
        def log_message(self, fmt: str, *args: Any) -> None:
            if config.log_requests:
                BaseHTTPRequestHandler.log_message(self, fmt, *args)

        def _send(
            self,
            status: int,
            body: bytes,
            content_type: str,
            extra_headers: Optional[dict] = None,
        ) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            for name, value in (extra_headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _send_json(
            self,
            status: int,
            payload: Any,
            extra_headers: Optional[dict] = None,
        ) -> None:
            self._send(
                status,
                json.dumps(payload).encode("utf-8"),
                "application/json; charset=utf-8",
                extra_headers,
            )

        def _send_error_json(
            self,
            status: int,
            code: str,
            message: str,
            detail: Any = None,
            extra_headers: Optional[dict] = None,
        ) -> None:
            self._send_json(
                status,
                {"error": {"code": code, "message": message, "detail": detail}},
                extra_headers,
            )

        # -- GET -------------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
            path = self.path.split("?", 1)[0]
            if path == "/healthz":
                self._send(200, b"ok\n", "text/plain; charset=utf-8")
            elif path == "/readyz":
                if not service.ready:
                    self._send_error_json(503, "not_ready", "model is not loaded")
                    return
                pool_check = getattr(service, "pool_ready", None)
                if pool_check is not None:
                    ok, detail = pool_check()
                    if not ok:
                        self._send_error_json(
                            503, "pool_degraded", "worker pool is degraded", detail
                        )
                        return
                self._send_json(200, service.describe())
            elif path == "/metrics":
                collect = getattr(service, "pool_metrics", None)
                body = (
                    to_prometheus() if collect is None else collect()
                ) + _kernel_info_lines()
                self._send(
                    200,
                    body.encode("utf-8"),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif path == "/v1/admin/lifecycle":
                self._run_admin(service.lifecycle_status)
            else:
                self._send_error_json(404, "not_found", f"unknown path {path!r}")

        # -- POST ------------------------------------------------------
        def _read_predict_payload(self) -> Optional[dict]:
            """Parse + schema-check the request body; None means an error
            response has already been sent."""
            try:
                length = int(self.headers.get("Content-Length", 0))
            except ValueError:
                self._send_error_json(
                    400, "invalid_request", "invalid Content-Length"
                )
                return None
            if length <= 0:
                self._send_error_json(400, "invalid_request", "empty request body")
                return None
            if length > _MAX_BODY_BYTES:
                self._send_error_json(
                    413, "payload_too_large", "request body too large",
                    {"max_bytes": _MAX_BODY_BYTES},
                )
                return None
            try:
                payload = json.loads(self.rfile.read(length).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self._send_error_json(
                    400, "invalid_request", f"body is not valid JSON: {exc}"
                )
                return None
            if not isinstance(payload, dict) or "rows" not in payload:
                self._send_error_json(
                    400, "invalid_request",
                    'body must be {"rows": [[...], ...]}',
                )
                return None
            request_id = payload.get("request_id")
            if request_id is not None and not isinstance(request_id, str):
                self._send_error_json(
                    400, "invalid_request", "request_id must be a string",
                    {"got": type(request_id).__name__},
                )
                return None
            return payload

        def _predict(self, payload: dict) -> Optional[tuple]:
            """Run the service; returns ``(predictions, model_block)`` or
            None when an error response was already sent."""
            try:
                return service.predict_with_info(payload["rows"])
            except QueueFullError as exc:
                self._send_error_json(429, "queue_full", str(exc))
            except (
                ValidationError,
                PayloadTooLargeError,
                NotReadyError,
            ) as exc:
                status = {
                    "invalid_request": 400,
                    "payload_too_large": 413,
                    "not_ready": 503,
                }[exc.code]
                self._send_error_json(status, exc.code, str(exc))
            except ServeError as exc:
                self._send_error_json(500, exc.code, str(exc))
            except Exception as exc:  # noqa: BLE001 — structured 500, never a dropped socket
                record_error()
                self._send_error_json(
                    500, "internal", f"unexpected server error: {exc}"
                )
            return None

        def _read_json_body(self, *, allow_empty: bool = False):
            """Parse an admin request body; ``(ok, payload_dict)``.

            ``allow_empty`` maps a missing body to ``{}`` (e.g. a reload
            of the currently-served artifact needs no parameters).
            """
            try:
                length = int(self.headers.get("Content-Length", 0))
            except ValueError:
                self._send_error_json(
                    400, "invalid_request", "invalid Content-Length"
                )
                return False, {}
            if length <= 0:
                if allow_empty:
                    return True, {}
                self._send_error_json(400, "invalid_request", "empty request body")
                return False, {}
            if length > _MAX_BODY_BYTES:
                self._send_error_json(
                    413, "payload_too_large", "request body too large",
                    {"max_bytes": _MAX_BODY_BYTES},
                )
                return False, {}
            try:
                payload = json.loads(self.rfile.read(length).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                self._send_error_json(
                    400, "invalid_request", f"body is not valid JSON: {exc}"
                )
                return False, {}
            if not isinstance(payload, dict):
                self._send_error_json(
                    400, "invalid_request", "body must be a JSON object"
                )
                return False, {}
            return True, payload

        def _run_admin(self, fn) -> None:
            """Run an admin operation, translating the error hierarchy."""
            try:
                result = fn()
            except (ReloadError, ValidationError) as exc:
                self._send_error_json(400, exc.code, str(exc))
                return
            except NotReadyError as exc:
                self._send_error_json(503, exc.code, str(exc))
                return
            except ServeError as exc:
                self._send_error_json(500, exc.code, str(exc))
                return
            except Exception as exc:  # noqa: BLE001 — structured 500
                self._send_error_json(
                    500, "internal", f"admin operation failed: {exc}"
                )
                return
            self._send_json(200, result)

        def _handle_admin_candidate(self, payload: dict) -> None:
            action = payload.get("action", "mount")
            if action == "unmount":
                self._run_admin(service.unmount_candidate)
            elif action == "promote":
                self._run_admin(service.promote_candidate)
            elif action == "mount":
                artifact = payload.get("artifact")
                if not isinstance(artifact, str) or not artifact:
                    self._send_error_json(
                        400, "invalid_request",
                        'mounting a candidate needs {"artifact": "path"}',
                    )
                    return
                mode = payload.get("mode")
                if mode is not None and not isinstance(mode, str):
                    self._send_error_json(
                        400, "invalid_request", "mode must be a string"
                    )
                    return
                fraction = payload.get("fraction")
                if fraction is not None and not isinstance(fraction, (int, float)):
                    self._send_error_json(
                        400, "invalid_request", "fraction must be a number"
                    )
                    return
                self._run_admin(
                    lambda: service.mount_candidate(
                        artifact, mode=mode, fraction=fraction
                    )
                )
            else:
                self._send_error_json(
                    400, "invalid_request",
                    f"unknown candidate action {action!r}",
                )

        def _handle_admin_feedback(self, payload: dict) -> None:
            if "rows" in payload:
                if not isinstance(payload.get("labels"), (list, tuple)):
                    self._send_error_json(
                        400, "invalid_request",
                        'feedback needs {"rows": [[...]], "labels": [...]}',
                    )
                    return
                self._run_admin(
                    lambda: service.feedback(payload["rows"], payload["labels"])
                )
            elif "build" in payload:
                build = payload["build"]
                if not isinstance(build, str) or not build:
                    self._send_error_json(
                        400, "invalid_request", "build must be an artifact path"
                    )
                    return
                self._run_admin(
                    lambda: service.build_follow_up_candidate(
                        build, mount=bool(payload.get("mount", False))
                    )
                )
            else:
                self._send_error_json(
                    400, "invalid_request",
                    'feedback body must carry "rows"/"labels" or "build"',
                )

        def do_POST(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
            path = self.path.split("?", 1)[0]
            if path == "/v1/predict":
                payload = self._read_predict_payload()
                if payload is None:
                    return
                result = self._predict(payload)
                if result is None:
                    return
                predictions, model_block = result
                self._send_json(
                    200,
                    {
                        "predictions": predictions,
                        "n": len(predictions),
                        # The handle that actually served the request, so
                        # post-swap responses carry the new artifact_sha.
                        "model": model_block,
                        "request_id": payload.get("request_id"),
                    },
                )
            elif path == "/predict":
                record_deprecated()
                deprecation_headers = {
                    "Deprecation": "true",
                    "Link": '</v1/predict>; rel="successor-version"',
                }
                payload = self._read_predict_payload()
                if payload is None:
                    return
                result = self._predict(payload)
                if result is None:
                    return
                predictions = result[0]
                self._send_json(
                    200,
                    {"predictions": predictions, "n": len(predictions)},
                    deprecation_headers,
                )
            elif path == "/v1/admin/reload":
                ok, payload = self._read_json_body(allow_empty=True)
                if not ok:
                    return
                artifact = payload.get("artifact")
                if artifact is not None and not isinstance(artifact, str):
                    self._send_error_json(
                        400, "invalid_request", "artifact must be a path string"
                    )
                    return
                self._run_admin(lambda: service.reload_artifact(artifact))
            elif path == "/v1/admin/candidate":
                ok, payload = self._read_json_body()
                if not ok:
                    return
                self._handle_admin_candidate(payload)
            elif path == "/v1/admin/feedback":
                ok, payload = self._read_json_body()
                if not ok:
                    return
                self._handle_admin_feedback(payload)
            else:
                self._send_error_json(404, "not_found", f"unknown path {path!r}")

    return _Handler


class ModelServer:
    """Bind an :class:`InferenceService` to a threaded HTTP server.

    ``model`` may be a fitted estimator/pipeline or an already-built
    :class:`InferenceService`.  :meth:`start` is non-blocking (the accept
    loop runs on a daemon thread); use :meth:`serve_forever` from a CLI.

    Pool hooks (PR 9): ``reuse_port=True`` binds with ``SO_REUSEPORT``
    so several processes can share one address; ``listen_socket=...``
    accepts on a socket the pool supervisor bound before forking (the
    fallback when ``SO_REUSEPORT`` is unavailable).
    """

    def __init__(
        self,
        model: Any,
        config: Optional[ServeConfig] = None,
        *,
        reuse_port: bool = False,
        listen_socket: Optional[socket.socket] = None,
    ) -> None:
        if isinstance(model, InferenceService):
            self.service = model
            self.config = config or model.config
        else:
            self.config = config or ServeConfig()
            self.service = InferenceService(model, self.config)
        self._reuse_port = reuse_port
        self._listen_socket = listen_socket
        # Guards _httpd/_thread: start/stop/address may race (a CLI's
        # signal handler stopping while serve_forever is still starting).
        self._lifecycle = threading.Lock()
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @classmethod
    def from_artifact(
        cls, path: Any, config: Optional[ServeConfig] = None
    ) -> "ModelServer":
        """Load a :mod:`repro.persist` artifact directory and serve it."""
        return cls(InferenceService.from_artifact(path, config), config)

    # -- lifecycle -----------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        """Bound ``(host, port)``; resolves ``port=0`` to the real port."""
        with self._lifecycle:
            httpd = self._httpd
        if httpd is None:
            raise RuntimeError("server is not started")
        host, port = httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def _build_httpd(self) -> ThreadingHTTPServer:
        handler = _make_handler(self.service, self.config)
        if self._listen_socket is not None:
            return _InheritedSocketHTTPServer(self._listen_socket, handler)
        server_cls = (
            _ReusePortHTTPServer if self._reuse_port else ThreadingHTTPServer
        )
        return server_cls((self.config.host, self.config.port), handler)

    def start(self) -> Tuple[str, int]:
        with self._lifecycle:
            if self._httpd is None:
                self.service.start()
                httpd = self._build_httpd()
                httpd.daemon_threads = True
                self._httpd = httpd
                self._thread = threading.Thread(
                    target=httpd.serve_forever,
                    name="repro-serve-http",
                    daemon=True,
                )
                self._thread.start()
        return self.address

    def stop(self) -> None:
        with self._lifecycle:
            httpd = self._httpd
            thread = self._thread
            self._httpd = None
            self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None:
            thread.join(timeout=5.0)
        self.service.stop()

    def serve_forever(self) -> None:
        """Blocking variant for the CLI; Ctrl-C or SIGTERM stops cleanly.

        SIGTERM is what init systems, containers, and CI runners send —
        and a non-interactive shell backgrounding the CLI with ``&``
        leaves SIGINT ignored, so it is the only reliable stop signal
        there.  The handler just sets an event (no locks: it runs on
        the main thread, possibly mid-critical-section).
        """
        self.start()
        with self._lifecycle:
            thread = self._thread
        assert thread is not None
        shutdown = threading.Event()
        try:
            previous = signal.signal(signal.SIGTERM, lambda *_: shutdown.set())
        except ValueError:  # not the main thread; Ctrl-C still applies
            previous = None
        try:
            while thread.is_alive() and not shutdown.is_set():
                thread.join(timeout=0.5)
        except KeyboardInterrupt:
            pass
        finally:
            if previous is not None:
                signal.signal(signal.SIGTERM, previous)
            self.stop()

    def __enter__(self) -> "ModelServer":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


__all__ = ["ModelServer"]
