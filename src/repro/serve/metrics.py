"""serve.* metrics: the service's view into :mod:`repro.obs`.

All serving metrics live in the process-local ``repro.obs.REGISTRY`` so
``GET /metrics`` renders them with the existing Prometheus exporter —
no second registry, no new exposition code.  Names (after the exporter's
``repro_`` prefix and counter ``_total`` suffix):

========================  =========  =====================================
``serve.requests``        counter    requests answered successfully
``serve.rows``            counter    rows predicted across all flushes
``serve.batches``         counter    fused model calls (flushes)
``serve.rejected``        counter    admission-control rejections (429)
``serve.errors``          counter    requests failed after admission
``serve.deprecated_requests`` counter  hits on deprecated endpoints
``serve.batch_size``      histogram  rows per flush (power-of-2 buckets)
``serve.queue_depth``     histogram  queue depth sampled at each flush
``serve.request_seconds`` histogram  submit→response latency per request
``serve.flush_seconds``   histogram  model-call duration per flush
``serve.model_loaded``    gauge      1 while a model is serving
``serve.worker_restarts`` counter    dead pool workers replaced by the
                                     supervisor
========================  =========  =====================================

The registry's metric *objects* are not internally locked (`add` /
`observe` are plain read-modify-write), which is fine for the chunked
single-writer hot paths but not for a threaded HTTP server.  Every
mutation here therefore goes through one module lock; at serving rates
(≤ tens of kHz of metric events) the contention is irrelevant.
"""

from __future__ import annotations

import threading
from typing import Tuple

from repro.obs.metrics import REGISTRY

_LOCK = threading.Lock()

#: Power-of-two row-count buckets covering batch sizes 1..1024.
COUNT_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def _counter(name: str, help: str):
    return REGISTRY.counter(name, help)


def record_request(seconds: float) -> None:
    """One successfully answered request."""
    with _LOCK:
        _counter("serve.requests", "Requests answered by the inference service.").add(1)
        REGISTRY.histogram(
            "serve.request_seconds",
            "Per-request latency from submission to response.",
        ).observe(seconds)


def record_rejected() -> None:
    """One request refused by admission control (full queue)."""
    with _LOCK:
        _counter("serve.rejected", "Requests rejected because the queue was full.").add(1)


def record_error() -> None:
    """One request that failed after being admitted."""
    with _LOCK:
        _counter("serve.errors", "Requests that failed after admission.").add(1)


def record_deprecated() -> None:
    """One request served through a deprecated endpoint (legacy /predict)."""
    with _LOCK:
        _counter(
            "serve.deprecated_requests",
            "Requests answered through deprecated endpoints.",
        ).add(1)


def record_flush(rows: int, seconds: float, queue_depth: int) -> None:
    """One fused model call covering ``rows`` rows."""
    with _LOCK:
        _counter("serve.batches", "Fused model calls (micro-batch flushes).").add(1)
        _counter("serve.rows", "Rows predicted across all flushes.").add(rows)
        REGISTRY.histogram(
            "serve.batch_size",
            "Rows per fused model call.",
            boundaries=COUNT_BUCKETS,
        ).observe(rows)
        REGISTRY.histogram(
            "serve.queue_depth",
            "Pending requests observed at each flush.",
            boundaries=COUNT_BUCKETS,
        ).observe(queue_depth)
        REGISTRY.histogram(
            "serve.flush_seconds",
            "Duration of each fused model call.",
        ).observe(seconds)


def set_model_loaded(loaded: bool) -> None:
    with _LOCK:
        REGISTRY.gauge(
            "serve.model_loaded", "1 while a model is loaded and serving."
        ).set(1.0 if loaded else 0.0)


def record_worker_restart() -> None:
    """One dead pool worker replaced by the supervisor."""
    with _LOCK:
        _counter(
            "serve.worker_restarts",
            "Dead pool workers replaced by the supervisor.",
        ).add(1)


def worker_restarts_snapshot() -> dict:
    """The restart counter's registry snapshot (supervisor-side).

    The supervisor is not a worker: it has no flush loop, so its restart
    counter is folded into the pool-wide ``/metrics`` view by writing
    this snapshot to a ``metrics-supervisor.json`` scratch file.
    """
    with _LOCK:
        snap = REGISTRY.collect()
    return {
        name: value
        for name, value in snap.items()
        if name == "serve.worker_restarts"
    }


__all__ = [
    "COUNT_BUCKETS",
    "record_deprecated",
    "record_error",
    "record_flush",
    "record_rejected",
    "record_request",
    "record_worker_restart",
    "set_model_loaded",
    "worker_restarts_snapshot",
]
