"""Micro-batching scheduler: many concurrent requests, one fused call.

The paper's encoder and classifiers are batch kernels — encoding 64 rows
in one :meth:`RecordEncoder.transform` call costs barely more than one
row, because the per-call overhead (level-table lookup, array setup,
dispatch) is amortised.  A naive HTTP server throws that away by calling
``predict`` once per request.  The :class:`MicroBatcher` recovers it:

1. handler threads :meth:`submit` their row blocks into a bounded queue
   (full queue → :class:`QueueFullError`, i.e. admission control);
2. a single background worker takes the oldest request, then keeps
   draining the queue until the pending rows reach ``max_batch`` or
   ``max_wait_ms`` has elapsed since it started collecting;
3. the collected blocks are stacked into one matrix, pushed through one
   fused ``flush_fn`` call, and the result rows are fanned back out to
   the waiting handler threads via per-request events.

With ``max_batch=1`` the worker degenerates to a per-request predict
loop — exactly the baseline the serving benchmark compares against.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, List, Optional

import numpy as np

from repro.serve.metrics import record_flush, record_rejected


class QueueFullError(RuntimeError):
    """Submission refused: the pending-request queue is at capacity."""


class _Pending:
    """One submitted request waiting for its slice of a flushed batch."""

    __slots__ = ("rows", "n", "event", "result", "error")

    def __init__(self, rows: np.ndarray) -> None:
        self.rows = rows
        self.n = int(rows.shape[0])
        self.event = threading.Event()
        self.result: Optional[np.ndarray] = None
        self.error: Optional[BaseException] = None

    def finish(self, result: np.ndarray) -> None:
        self.result = result
        self.event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.event.set()


class MicroBatcher:
    """Bounded-queue batching worker around a fused ``flush_fn``.

    Parameters
    ----------
    flush_fn:
        ``(rows_matrix) -> per_row_outputs``; called from the worker
        thread with the vertically stacked rows of every request in the
        batch, must return an array-like with one entry per input row.
    max_batch:
        Flush as soon as the collected rows reach this bound.
    max_wait_ms:
        Flush a partial batch this long after collection started.
    queue_size:
        Bound on queued requests; :meth:`submit` beyond it raises
        :class:`QueueFullError` instead of blocking.
    """

    _POLL_S = 0.05  # worker wake-up period while idle (shutdown latency)

    def __init__(
        self,
        flush_fn: Callable[[np.ndarray], np.ndarray],
        *,
        max_batch: int,
        max_wait_ms: float,
        queue_size: int,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._flush_fn = flush_fn
        self._max_batch = int(max_batch)
        self._max_wait_s = float(max_wait_ms) / 1000.0
        self._queue: "queue.Queue[_Pending]" = queue.Queue(maxsize=queue_size)
        self._stop = threading.Event()
        # Guards _thread: start/stop/running may be called concurrently
        # (e.g. a signal handler stopping while a late start retries).
        self._lifecycle = threading.Lock()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------
    @property
    def running(self) -> bool:
        with self._lifecycle:
            thread = self._thread
        return thread is not None and thread.is_alive()

    def start(self) -> None:
        with self._lifecycle:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._worker, name="repro-serve-batcher", daemon=True
            )
            self._thread.start()

    def stop(self, *, drain_timeout_s: float = 5.0) -> None:
        """Stop the worker; fail any requests still queued so no caller hangs."""
        with self._lifecycle:
            thread = self._thread
            self._thread = None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=drain_timeout_s)
        while True:
            try:
                pending = self._queue.get_nowait()
            except queue.Empty:
                break
            pending.fail(RuntimeError("server shutting down"))

    # -- submission ----------------------------------------------------
    def submit(self, rows: np.ndarray) -> _Pending:
        """Enqueue a request; returns the pending handle to wait on."""
        if not self.running:
            raise RuntimeError("MicroBatcher is not running; call start() first")
        pending = _Pending(rows)
        try:
            self._queue.put_nowait(pending)
        except queue.Full:
            record_rejected()
            raise QueueFullError(
                f"request queue is full ({self._queue.maxsize} pending); retry later"
            ) from None
        return pending

    # -- worker --------------------------------------------------------
    def _collect(self, first: _Pending) -> List[_Pending]:
        """Drain the queue until max_batch rows, the window closes, or the
        arrival stream pauses.

        ``max_wait_ms`` is a *cap*, not a mandatory hold: once arrivals go
        quiet for a grace period (window/8, >= 0.2 ms) the partial batch
        flushes immediately.  Under closed-loop load (clients waiting on
        their responses) this collects exactly the outstanding burst
        instead of idling out the whole window on every flush.
        """
        batch = [first]
        total = first.n
        deadline = time.perf_counter() + self._max_wait_s
        grace = min(self._max_wait_s, max(self._max_wait_s / 8.0, 0.0002))
        while total < self._max_batch:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                nxt = self._queue.get(timeout=min(grace, remaining))
            except queue.Empty:
                break  # arrivals paused — flush what we have
            batch.append(nxt)
            total += nxt.n
        return batch

    def _flush(self, batch: List[_Pending]) -> None:
        depth = self._queue.qsize()
        total = sum(p.n for p in batch)
        if len(batch) == 1:
            stacked = batch[0].rows
        else:
            stacked = np.concatenate([p.rows for p in batch], axis=0)
        started = time.perf_counter()
        try:
            out = np.asarray(self._flush_fn(stacked))
        except BaseException as exc:  # noqa: BLE001 — fanned back to callers
            for pending in batch:
                pending.fail(exc)
            return
        elapsed = time.perf_counter() - started
        if out.shape[0] != total:
            mismatch = RuntimeError(
                f"flush_fn returned {out.shape[0]} outputs for {total} rows"
            )
            for pending in batch:
                pending.fail(mismatch)
            return
        record_flush(total, elapsed, depth)
        offset = 0
        for pending in batch:
            pending.finish(out[offset : offset + pending.n])
            offset += pending.n

    def _worker(self) -> None:
        while not self._stop.is_set():
            try:
                first = self._queue.get(timeout=self._POLL_S)
            except queue.Empty:
                continue
            self._flush(self._collect(first))


__all__ = ["MicroBatcher", "QueueFullError"]
