"""Command-line entry point: ``repro-serve`` / ``python -m repro.serve``.

Loads a :mod:`repro.persist` artifact directory and serves it over HTTP::

    repro-serve --artifact runs/pima-hamming --port 8100
    repro-serve --artifact runs/pima-hamming --workers 4 --mmap

With ``--workers > 1`` the pre-fork pool (:mod:`repro.serve.pool`)
serves the artifact: N processes share one ``SO_REUSEPORT`` address and
— with ``--mmap`` — one set of physical payload pages.  The pool knobs
also resolve from the environment (``REPRO_SERVE_WORKERS``,
``REPRO_SERVE_SHARDS``, ``REPRO_SERVE_MMAP``); explicit flags win.

Exit codes: 0 = clean shutdown (Ctrl-C), 2 = bad arguments or an
unloadable artifact.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.persist import ArtifactError, artifact_info
from repro.serve.config import ServeConfig, resolve_serve_config
from repro.serve.http import ModelServer
from repro.serve.pool import ServePool


def build_parser() -> argparse.ArgumentParser:
    defaults = ServeConfig()
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Serve a saved model artifact over HTTP with micro-batched "
            "inference (endpoints: POST /v1/predict, POST /predict "
            "[deprecated], GET /healthz, /readyz, /metrics)."
        ),
    )
    parser.add_argument(
        "--artifact", required=True, metavar="DIR",
        help="artifact directory written by repro.persist.save_artifact",
    )
    parser.add_argument("--host", default=defaults.host, help="bind address")
    parser.add_argument(
        "--port", type=int, default=defaults.port,
        help="bind port (0 picks a free port)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=defaults.max_batch, metavar="ROWS",
        help="max rows fused into one model call",
    )
    parser.add_argument(
        "--max-wait-ms", type=float, default=defaults.max_wait_ms, metavar="MS",
        help="batching window after the first queued request",
    )
    parser.add_argument(
        "--queue-size", type=int, default=defaults.queue_size, metavar="N",
        help="pending-request bound before 429 rejections",
    )
    parser.add_argument(
        "--max-rows-per-request", type=int,
        default=defaults.max_rows_per_request, metavar="N",
        help="per-request row cap before 413 rejections",
    )
    parser.add_argument(
        "--log-requests", action="store_true",
        help="log one line per HTTP request to stderr",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help=(
            "worker processes (pre-fork pool when > 1); default 1, "
            "env REPRO_SERVE_WORKERS"
        ),
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help=(
            "candidate-store shards for the scatter-gather engine "
            "(bit-identical results); default 1, env REPRO_SERVE_SHARDS"
        ),
    )
    parser.add_argument(
        "--mmap", action="store_true", default=None,
        help=(
            "load artifact payloads as shared read-only memory maps; "
            "env REPRO_SERVE_MMAP"
        ),
    )
    # Pre-PR-9 spellings; forwarded through resolve_serve_config's
    # renamed_kwargs shim, which emits the DeprecationWarning.
    parser.add_argument(
        "--n-workers", type=int, default=None, dest="n_workers",
        help=argparse.SUPPRESS,
    )
    parser.add_argument(
        "--n-shards", type=int, default=None, dest="n_shards",
        help=argparse.SUPPRESS,
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        pool_knobs = {}
        if args.n_workers is not None:
            pool_knobs["n_workers"] = args.n_workers
        else:
            pool_knobs["workers"] = args.workers
        if args.n_shards is not None:
            pool_knobs["n_shards"] = args.n_shards
        else:
            pool_knobs["shards"] = args.shards
        config = resolve_serve_config(
            mmap=args.mmap,
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            queue_size=args.queue_size,
            max_rows_per_request=args.max_rows_per_request,
            log_requests=args.log_requests,
            **pool_knobs,
        )
    except ValueError as exc:
        print(f"repro-serve: error: {exc}", file=sys.stderr)
        return 2
    try:
        info = artifact_info(args.artifact)
    except ArtifactError as exc:
        print(f"repro-serve: error: {exc}", file=sys.stderr)
        return 2
    if config.workers > 1:
        try:
            pool = ServePool(args.artifact, config)
            host, port = pool.start()
        except (ArtifactError, RuntimeError, OSError) as exc:
            print(f"repro-serve: error: {exc}", file=sys.stderr)
            return 2
        print(
            f"repro-serve: serving {info['kind']} "
            f"(schema v{info['schema_version']}, repro {info['repro_version']}) "
            f"on http://{host}:{port} "
            f"[{config.workers} workers, {config.shards} shards"
            f"{', mmap' if config.mmap else ''}]",
            flush=True,
        )
        try:
            pool.serve_forever()
        finally:
            pool.stop()
        return 0
    try:
        server = ModelServer.from_artifact(args.artifact, config)
    except ArtifactError as exc:
        print(f"repro-serve: error: {exc}", file=sys.stderr)
        return 2
    host, port = server.start()
    print(
        f"repro-serve: serving {info['kind']} "
        f"(schema v{info['schema_version']}, repro {info['repro_version']}) "
        f"on http://{host}:{port}",
        flush=True,
    )
    try:
        server.serve_forever()
    finally:
        server.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
