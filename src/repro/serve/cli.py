"""Command-line entry point: ``repro-serve`` / ``python -m repro.serve``.

Loads a :mod:`repro.persist` artifact directory and serves it over HTTP::

    repro-serve --artifact runs/pima-hamming --port 8100
    repro-serve --artifact runs/pima-hamming --workers 4 --mmap

With ``--workers > 1`` the pre-fork pool (:mod:`repro.serve.pool`)
serves the artifact: N processes share one ``SO_REUSEPORT`` address and
— with ``--mmap`` — one set of physical payload pages.  The pool knobs
also resolve from the environment (``REPRO_SERVE_WORKERS``,
``REPRO_SERVE_SHARDS``, ``REPRO_SERVE_MMAP``); explicit flags win.

Lifecycle flags (PR 10): ``--watch-artifact`` polls the served artifact
directory and hot-swaps in place when its manifest sha changes;
``--candidate-artifact`` mounts a second model for shadow or A/B
(``--candidate-mode``, ``--ab-fraction``) evaluation; ``--drift-threshold``
/ ``--drift-window`` tune the HDC traffic-vs-training drift monitor.
Everything is also reachable at runtime through ``POST /v1/admin/*``.

Exit codes: 0 = clean shutdown (Ctrl-C), 2 = bad arguments or an
unloadable artifact.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.persist import ArtifactError, artifact_info
from repro.serve.config import ServeConfig, resolve_serve_config
from repro.serve.http import ModelServer
from repro.serve.pool import ServePool


def build_parser() -> argparse.ArgumentParser:
    defaults = ServeConfig()
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Serve a saved model artifact over HTTP with micro-batched "
            "inference (endpoints: POST /v1/predict, POST /predict "
            "[deprecated], GET /healthz, /readyz, /metrics)."
        ),
    )
    parser.add_argument(
        "--artifact", required=True, metavar="DIR",
        help="artifact directory written by repro.persist.save_artifact",
    )
    parser.add_argument("--host", default=defaults.host, help="bind address")
    parser.add_argument(
        "--port", type=int, default=defaults.port,
        help="bind port (0 picks a free port)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=defaults.max_batch, metavar="ROWS",
        help="max rows fused into one model call",
    )
    parser.add_argument(
        "--max-wait-ms", type=float, default=defaults.max_wait_ms, metavar="MS",
        help="batching window after the first queued request",
    )
    parser.add_argument(
        "--queue-size", type=int, default=defaults.queue_size, metavar="N",
        help="pending-request bound before 429 rejections",
    )
    parser.add_argument(
        "--max-rows-per-request", type=int,
        default=defaults.max_rows_per_request, metavar="N",
        help="per-request row cap before 413 rejections",
    )
    parser.add_argument(
        "--log-requests", action="store_true",
        help="log one line per HTTP request to stderr",
    )
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help=(
            "worker processes (pre-fork pool when > 1); default 1, "
            "env REPRO_SERVE_WORKERS"
        ),
    )
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help=(
            "candidate-store shards for the scatter-gather engine "
            "(bit-identical results); default 1, env REPRO_SERVE_SHARDS"
        ),
    )
    parser.add_argument(
        "--mmap", action="store_true", default=None,
        help=(
            "load artifact payloads as shared read-only memory maps; "
            "env REPRO_SERVE_MMAP"
        ),
    )
    parser.add_argument(
        "--watch-artifact", action="store_true",
        help="poll the artifact directory and hot-swap when its sha changes",
    )
    parser.add_argument(
        "--watch-interval", type=float, default=defaults.watch_interval_s,
        metavar="S", help="artifact watch poll period in seconds",
    )
    parser.add_argument(
        "--candidate-artifact", default=None, metavar="DIR",
        help="artifact to mount as the shadow/A-B candidate at startup",
    )
    parser.add_argument(
        "--candidate-mode", choices=("shadow", "ab"),
        default=defaults.candidate_mode,
        help="candidate routing: mirrored shadow traffic or a live A/B split",
    )
    parser.add_argument(
        "--ab-fraction", type=float, default=defaults.ab_fraction,
        metavar="F", help="fraction of live requests A/B-routed to the candidate",
    )
    parser.add_argument(
        "--drift-threshold", type=float, default=defaults.drift_threshold,
        metavar="D",
        help="normalised Hamming distance beyond which drift is flagged",
    )
    parser.add_argument(
        "--drift-window", type=int, default=defaults.drift_window,
        metavar="ROWS", help="soft row window for the traffic drift centroid",
    )
    # Pre-PR-9 spellings; forwarded through resolve_serve_config's
    # renamed_kwargs shim, which emits the DeprecationWarning.
    parser.add_argument(
        "--n-workers", type=int, default=None, dest="n_workers",
        help=argparse.SUPPRESS,
    )
    parser.add_argument(
        "--n-shards", type=int, default=None, dest="n_shards",
        help=argparse.SUPPRESS,
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        pool_knobs = {}
        if args.n_workers is not None:
            pool_knobs["n_workers"] = args.n_workers
        else:
            pool_knobs["workers"] = args.workers
        if args.n_shards is not None:
            pool_knobs["n_shards"] = args.n_shards
        else:
            pool_knobs["shards"] = args.shards
        config = resolve_serve_config(
            mmap=args.mmap,
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            queue_size=args.queue_size,
            max_rows_per_request=args.max_rows_per_request,
            log_requests=args.log_requests,
            watch_artifact=args.watch_artifact,
            watch_interval_s=args.watch_interval,
            candidate_artifact=args.candidate_artifact,
            candidate_mode=args.candidate_mode,
            ab_fraction=args.ab_fraction,
            drift_threshold=args.drift_threshold,
            drift_window=args.drift_window,
            **pool_knobs,
        )
    except ValueError as exc:
        print(f"repro-serve: error: {exc}", file=sys.stderr)
        return 2
    try:
        info = artifact_info(args.artifact)
    except ArtifactError as exc:
        print(f"repro-serve: error: {exc}", file=sys.stderr)
        return 2
    if config.workers > 1:
        try:
            pool = ServePool(args.artifact, config)
            host, port = pool.start()
        except (ArtifactError, RuntimeError, OSError) as exc:
            print(f"repro-serve: error: {exc}", file=sys.stderr)
            return 2
        print(
            f"repro-serve: serving {info['kind']} "
            f"(schema v{info['schema_version']}, repro {info['repro_version']}) "
            f"on http://{host}:{port} "
            f"[{config.workers} workers, {config.shards} shards"
            f"{', mmap' if config.mmap else ''}]",
            flush=True,
        )
        watcher = _start_watcher(config, args.artifact, pool=pool)
        try:
            pool.serve_forever()
        finally:
            if watcher is not None:
                watcher.stop()
            pool.stop()
        return 0
    try:
        server = ModelServer.from_artifact(args.artifact, config)
        if config.candidate_artifact is not None:
            server.service.mount_candidate(config.candidate_artifact)
    except (ArtifactError, RuntimeError) as exc:  # ReloadError is a RuntimeError
        print(f"repro-serve: error: {exc}", file=sys.stderr)
        return 2
    host, port = server.start()
    print(
        f"repro-serve: serving {info['kind']} "
        f"(schema v{info['schema_version']}, repro {info['repro_version']}) "
        f"on http://{host}:{port}",
        flush=True,
    )
    watcher = _start_watcher(config, args.artifact, server=server)
    try:
        server.serve_forever()
    finally:
        if watcher is not None:
            watcher.stop()
        server.stop()
    return 0


def _start_watcher(config, artifact: str, *, server=None, pool=None):
    """Wire ``--watch-artifact`` to the right reload path, if enabled.

    A single server reloads in place; a pool verifies once in the
    supervisor and publishes a deploy record every worker applies.
    """
    if not config.watch_artifact:
        return None
    from repro.lifecycle import ArtifactWatcher
    from repro.persist import artifact_sha

    if pool is not None:
        on_change = lambda path: pool.publish_deploy(artifact=path)  # noqa: E731
    else:
        on_change = lambda path: server.service.reload_artifact(path)  # noqa: E731
    watcher = ArtifactWatcher(
        artifact,
        on_change,
        interval_s=config.watch_interval_s,
        initial_sha=artifact_sha(artifact),
    )
    watcher.start()
    print(
        f"repro-serve: watching {artifact} every {config.watch_interval_s}s "
        f"for hot-swap",
        flush=True,
    )
    return watcher


if __name__ == "__main__":
    raise SystemExit(main())
