"""Inference service: validated requests in, micro-batched predictions out.

:class:`InferenceService` owns the loaded model and the
:class:`~repro.serve.batcher.MicroBatcher`; the HTTP layer
(:mod:`repro.serve.http`) is a thin translation of its exceptions to
status codes:

===============================  ====
:class:`ValidationError`          400
:class:`PayloadTooLargeError`     413
:class:`~repro.serve.batcher.QueueFullError`  429
:class:`NotReadyError`            503
anything else                     500
===============================  ====

The served model is anything with ``predict(rows) -> labels`` — in
practice a :class:`~repro.ml.pipeline.HDCFeaturePipeline` loaded from a
:mod:`repro.persist` artifact, so one flush runs one fused
record-encoding pass and one batched classifier call.
"""

from __future__ import annotations

import time
from typing import Any, List, Optional, Sequence

import numpy as np

from repro.serve.batcher import MicroBatcher
from repro.serve.config import ServeConfig
from repro.serve.metrics import record_error, record_request, set_model_loaded


class ServeError(RuntimeError):
    """Base class for request-level serving failures.

    Every subclass carries a stable machine-readable ``code`` — the
    ``error.code`` field of the ``/v1`` structured error schema (see
    DESIGN.md §12); ``str(exc)`` is the human-readable message.
    """

    code = "internal"


class ValidationError(ServeError):
    """Malformed request payload (bad JSON shape, non-numeric rows...)."""

    code = "invalid_request"


class PayloadTooLargeError(ServeError):
    """Request exceeds ``max_rows_per_request``."""

    code = "payload_too_large"


class NotReadyError(ServeError):
    """Service not started or no model loaded."""

    code = "not_ready"


class InferenceService:
    """Micro-batched prediction front-end over one fitted model."""

    def __init__(
        self,
        model: Any,
        config: Optional[ServeConfig] = None,
        *,
        artifact_sha: Optional[str] = None,
    ) -> None:
        if not hasattr(model, "predict"):
            raise TypeError(
                f"model must expose predict(rows); got {type(model).__name__}"
            )
        self.model = model
        self.config = config or ServeConfig()
        self.artifact_sha = artifact_sha
        if self.config.shards > 1 and hasattr(model, "shards"):
            # Route queries through the sharded scatter-gather engine;
            # bit-identical results, see repro.core.search.
            model.shards = self.config.shards
        self._batcher = MicroBatcher(
            self._predict_batch,
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
            queue_size=self.config.queue_size,
        )

    @classmethod
    def from_artifact(
        cls,
        path: Any,
        config: Optional[ServeConfig] = None,
        *,
        verify: bool = True,
    ) -> "InferenceService":
        """Load a :mod:`repro.persist` artifact and wrap it for serving.

        ``config.mmap`` selects the shared read-only load path; pool
        workers pass ``verify=False`` after the supervisor has already
        run :func:`repro.persist.verify_artifact` once.
        """
        from repro.persist import artifact_sha, load_artifact

        config = config or ServeConfig()
        model = load_artifact(path, mmap=config.mmap, verify=verify)
        return cls(model, config, artifact_sha=artifact_sha(path))

    def model_info(self) -> dict:
        """The ``model`` block of every ``/v1`` response envelope."""
        from repro.persist import SCHEMA_VERSION

        return {
            "kind": type(self.model).__name__,
            "schema_version": SCHEMA_VERSION,
            "artifact_sha": self.artifact_sha,
        }

    # -- lifecycle -----------------------------------------------------
    @property
    def ready(self) -> bool:
        return self._batcher.running

    def start(self) -> "InferenceService":
        self._batcher.start()
        set_model_loaded(True)
        return self

    def stop(self) -> None:
        self._batcher.stop()
        set_model_loaded(False)

    def __enter__(self) -> "InferenceService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- request path --------------------------------------------------
    def _validate(self, rows: Sequence[Sequence[float]]) -> np.ndarray:
        if not isinstance(rows, (list, tuple)) or len(rows) == 0:
            raise ValidationError("rows must be a non-empty list of feature rows")
        if len(rows) > self.config.max_rows_per_request:
            raise PayloadTooLargeError(
                f"request carries {len(rows)} rows; the per-request limit is "
                f"{self.config.max_rows_per_request}"
            )
        try:
            arr = np.asarray(rows, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"rows are not a numeric matrix: {exc}") from exc
        if arr.ndim != 2:
            raise ValidationError(
                f"rows must form a 2-d matrix, got shape {arr.shape}"
            )
        if not np.all(np.isfinite(arr)):
            raise ValidationError("rows contain NaN or infinite values")
        expected = getattr(self.model, "n_features_in_", None)
        if expected is not None and arr.shape[1] != expected:
            raise ValidationError(
                f"rows have {arr.shape[1]} features; the model expects {expected}"
            )
        return arr

    def _predict_batch(self, stacked: np.ndarray) -> np.ndarray:
        return np.asarray(self.model.predict(stacked))

    def predict(self, rows: Sequence[Sequence[float]]) -> List[Any]:
        """Validate, enqueue, wait for the fused flush, return labels.

        Raises the exception hierarchy above; the returned labels are
        plain Python scalars (JSON-ready).
        """
        started = time.perf_counter()
        arr = self._validate(rows)
        if not self.ready:
            raise NotReadyError("service is not running; no model is being served")
        pending = self._batcher.submit(arr)  # QueueFullError propagates
        if not pending.event.wait(timeout=self.config.request_timeout_s):
            record_error()
            raise ServeError(
                f"request timed out after {self.config.request_timeout_s}s "
                f"waiting for a batch slot"
            )
        if pending.error is not None:
            record_error()
            raise ServeError(f"batched predict failed: {pending.error}") from pending.error
        record_request(time.perf_counter() - started)
        assert pending.result is not None
        return np.asarray(pending.result).tolist()

    def describe(self) -> dict:
        """Model/runtime summary served by ``GET /readyz`` and the CLI."""
        from repro.kernels import active_backend

        model = self.model
        info = {
            "model": type(model).__name__,
            "ready": self.ready,
            "max_batch": self.config.max_batch,
            "max_wait_ms": self.config.max_wait_ms,
            "queue_size": self.config.queue_size,
            "kernel_backend": active_backend(),
            "workers": self.config.workers,
            "shards": self.config.shards,
            "artifact_sha": self.artifact_sha,
        }
        n_features = getattr(model, "n_features_in_", None)
        if n_features is not None:
            info["n_features"] = int(n_features)
        classes = getattr(model, "classes_", None)
        if classes is not None:
            info["classes"] = np.asarray(classes).tolist()
        return info


__all__ = [
    "InferenceService",
    "NotReadyError",
    "PayloadTooLargeError",
    "ServeError",
    "ValidationError",
]
