"""Inference service: validated requests in, micro-batched predictions out.

:class:`InferenceService` owns the :class:`~repro.lifecycle.ModelLifecycle`
(which model is primary, which is candidate) and the
:class:`~repro.serve.batcher.MicroBatcher`; the HTTP layer
(:mod:`repro.serve.http`) is a thin translation of its exceptions to
status codes:

===============================  ====
:class:`ValidationError`          400
:class:`ReloadError`              400
:class:`PayloadTooLargeError`     413
:class:`~repro.serve.batcher.QueueFullError`  429
:class:`NotReadyError`            503
:class:`PredictFailedError`       500
anything else                     500
===============================  ====

The served model is anything with ``predict(rows) -> labels`` — in
practice a :class:`~repro.ml.pipeline.HDCFeaturePipeline` loaded from a
:mod:`repro.persist` artifact, so one flush runs one fused
record-encoding pass and one batched classifier call.

Hot-swap safety (PR 10, DESIGN.md §13): every flush reads the primary
:class:`~repro.lifecycle.ModelHandle` exactly once, reloads build the
replacement model entirely outside the lifecycle lock, and the swap
itself is one reference assignment — so requests in flight complete on
the model that started them, the very next flush serves the new one,
and no request is ever dropped or 5xx'd by a reload.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.lifecycle import (
    DriftMonitor,
    FollowUpTrainer,
    ModelHandle,
    ModelLifecycle,
    ShadowRunner,
)
from repro.lifecycle.metrics import (
    record_ab_candidate,
    record_candidate_error,
    record_reload_error,
)
from repro.serve.batcher import MicroBatcher, QueueFullError
from repro.serve.config import ServeConfig
from repro.serve.metrics import record_error, record_request, set_model_loaded


class ServeError(RuntimeError):
    """Base class for request-level serving failures.

    Every subclass carries a stable machine-readable ``code`` — the
    ``error.code`` field of the ``/v1`` structured error schema (see
    DESIGN.md §12); ``str(exc)`` is the human-readable message.
    """

    code = "internal"


class ValidationError(ServeError):
    """Malformed request payload (bad JSON shape, non-numeric rows...)."""

    code = "invalid_request"


class PayloadTooLargeError(ServeError):
    """Request exceeds ``max_rows_per_request``."""

    code = "payload_too_large"


class NotReadyError(ServeError):
    """Service not started or no model loaded."""

    code = "not_ready"


class PredictFailedError(ServeError):
    """The model raised while predicting a flushed batch.

    Distinguished from the generic ``internal`` code so clients (and the
    swap-under-load scenario) can tell a model bug from a server bug.
    """

    code = "predict_failed"


class ReloadError(ServeError):
    """A lifecycle operation (reload / mount / promote) failed to apply.

    The previous primary keeps serving — a failed reload never takes
    traffic down.
    """

    code = "reload_failed"


class InferenceService:
    """Micro-batched prediction front-end over a live model lifecycle."""

    def __init__(
        self,
        model: Any,
        config: Optional[ServeConfig] = None,
        *,
        artifact_sha: Optional[str] = None,
        artifact_path: Optional[str] = None,
    ) -> None:
        if not hasattr(model, "predict"):
            raise TypeError(
                f"model must expose predict(rows); got {type(model).__name__}"
            )
        self.config = config or ServeConfig()
        self._lifecycle = ModelLifecycle(
            ModelHandle(
                model=model,
                artifact_sha=artifact_sha,
                path=str(artifact_path) if artifact_path is not None else None,
            )
        )
        # Drift detection and the follow-up trainer both need the fitted
        # record encoder; models without one (raw sklearn estimators)
        # serve fine with both features disabled.  Created once here —
        # reloads re-arm the monitor via set_reference, never rebuild it.
        encoder = getattr(model, "encoder_", None)
        dim = getattr(encoder, "dim", None)
        self._drift = (
            DriftMonitor(
                int(dim),
                threshold=self.config.drift_threshold,
                window=self.config.drift_window,
            )
            if dim is not None and int(dim) >= 2
            else None
        )
        self._trainer = (
            FollowUpTrainer(encoder)
            if encoder is not None and getattr(encoder, "_fitted", False)
            else None
        )
        self._bind_model(model)
        self._batcher = MicroBatcher(
            self._predict_batch,
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
            queue_size=self.config.queue_size,
        )

    @classmethod
    def from_artifact(
        cls,
        path: Any,
        config: Optional[ServeConfig] = None,
        *,
        verify: bool = True,
    ) -> "InferenceService":
        """Load a :mod:`repro.persist` artifact and wrap it for serving.

        ``config.mmap`` selects the shared read-only load path; pool
        workers pass ``verify=False`` after the supervisor has already
        run :func:`repro.persist.verify_artifact` once.  When the
        artifact carries a ``train_centroid`` extra (PR 10) the drift
        monitor is armed against it.
        """
        from repro.persist import artifact_sha, load_artifact

        config = config or ServeConfig()
        model = load_artifact(path, mmap=config.mmap, verify=verify)
        service = cls(
            model,
            config,
            artifact_sha=artifact_sha(path),
            artifact_path=str(path),
        )
        service._arm_drift(model, str(path))
        return service

    # -- lifecycle plumbing --------------------------------------------
    @property
    def model(self) -> Any:
        """The current primary model (snapshot; may change on hot-swap)."""
        return self._lifecycle.primary().model

    @property
    def artifact_sha(self) -> Optional[str]:
        return self._lifecycle.primary().artifact_sha

    @property
    def generation(self) -> int:
        return self._lifecycle.primary().generation

    def _bind_model(self, model: Any) -> None:
        """Attach serving-side hooks to a model about to become primary."""
        if self.config.shards > 1 and hasattr(model, "shards"):
            # Route queries through the sharded scatter-gather engine;
            # bit-identical results, see repro.core.search.
            model.shards = self.config.shards
        if self._drift is not None and hasattr(model, "feature_hook"):
            # The pipeline hands every encoded batch to the drift
            # accumulator — drift costs nothing HDC has not already paid.
            model.feature_hook = self._drift.observe

    def _arm_drift(self, model: Any, path: Optional[str]) -> None:
        """Point the drift monitor at ``path``'s persisted training centroid."""
        if self._drift is None or path is None:
            return
        encoder = getattr(model, "encoder_", None)
        if encoder is None:
            return
        from repro.persist import artifact_extras

        try:
            extras = artifact_extras(path, verify=False)
        except Exception:
            extras = {}
        self._drift.set_reference(
            extras.get("train_centroid"), dim=int(encoder.dim)
        )

    def model_info(self) -> dict:
        """The ``model`` block of every ``/v1`` response envelope."""
        from repro.persist import SCHEMA_VERSION

        return self._lifecycle.primary().info(SCHEMA_VERSION)

    def _publish(self, publish: bool) -> None:
        """Fan the desired lifecycle state out to pool siblings.

        ``pool_publish`` is installed by the pool worker bootstrap; on a
        single-process server it is absent and this is a no-op.  Appliers
        of a deploy record call the admin ops with ``publish=False`` so a
        propagated change is not re-published in a loop.
        """
        hook = getattr(self, "pool_publish", None)
        if not publish or hook is None:
            return
        primary = self._lifecycle.primary()
        state = self._lifecycle.candidate()
        candidate = None
        if state is not None:
            candidate = {
                "artifact": state.handle.path,
                "artifact_sha": state.handle.artifact_sha,
                "mode": state.mode,
                "fraction": state.fraction,
            }
        hook(
            artifact=primary.path,
            artifact_sha=primary.artifact_sha,
            candidate=candidate,
        )

    # -- lifecycle -----------------------------------------------------
    @property
    def ready(self) -> bool:
        return self._batcher.running

    def start(self) -> "InferenceService":
        self._batcher.start()
        set_model_loaded(True)
        return self

    def stop(self) -> None:
        self._batcher.stop()
        state = self._lifecycle.candidate()
        if state is not None and state.shadow is not None:
            state.shadow.stop()
        set_model_loaded(False)

    def __enter__(self) -> "InferenceService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- admin: hot-swap / candidate / feedback ------------------------
    def reload_artifact(
        self,
        path: Optional[str] = None,
        *,
        verify: bool = True,
        publish: bool = True,
    ) -> Dict[str, Any]:
        """Atomically hot-swap the primary from an artifact directory.

        Loading and verification run on the calling thread while the old
        model keeps serving; only the final reference swap touches the
        lifecycle lock.  Defaults to re-reading the artifact the primary
        was loaded from (the ``--watch-artifact`` path).
        """
        from repro.persist import ArtifactError, artifact_sha, load_artifact

        target = path if path is not None else self._lifecycle.primary().path
        if target is None:
            raise ReloadError(
                "the primary was not loaded from an artifact; pass an "
                "artifact path to reload from"
            )
        started = time.perf_counter()
        try:
            model = load_artifact(target, mmap=self.config.mmap, verify=verify)
            sha = artifact_sha(target)
        except (ArtifactError, OSError) as exc:
            record_reload_error()
            raise ReloadError(
                f"could not reload artifact at {target}: {exc}"
            ) from exc
        self._bind_model(model)
        handle = self._lifecycle.swap(
            model,
            artifact_sha=sha,
            path=str(target),
            seconds=time.perf_counter() - started,
        )
        self._arm_drift(model, str(target))
        self._publish(publish)
        return {
            "model": self.model_info(),
            "generation": handle.generation,
            "artifact": str(target),
        }

    def mount_candidate(
        self,
        path: str,
        *,
        mode: Optional[str] = None,
        fraction: Optional[float] = None,
        verify: bool = True,
        publish: bool = True,
    ) -> Dict[str, Any]:
        """Mount an artifact as the candidate (shadow or A/B traffic)."""
        from repro.persist import ArtifactError, artifact_sha, load_artifact

        mode = mode if mode is not None else self.config.candidate_mode
        fraction = (
            self.config.ab_fraction if fraction is None else float(fraction)
        )
        try:
            model = load_artifact(path, mmap=self.config.mmap, verify=verify)
            sha = artifact_sha(path)
        except (ArtifactError, OSError) as exc:
            raise ReloadError(
                f"could not load candidate artifact at {path}: {exc}"
            ) from exc
        shadow = ShadowRunner(model).start() if mode == "shadow" else None
        try:
            self._lifecycle.mount_candidate(
                model,
                artifact_sha=sha,
                path=str(path),
                mode=mode,
                fraction=fraction,
                shadow=shadow,
            )
        except ValueError as exc:
            if shadow is not None:
                shadow.stop()
            raise ReloadError(str(exc)) from exc
        self._publish(publish)
        return {"candidate": self._lifecycle.describe()["candidate"]}

    def unmount_candidate(self, *, publish: bool = True) -> Dict[str, Any]:
        removed = self._lifecycle.unmount_candidate()
        self._publish(publish)
        return {"unmounted": removed}

    def promote_candidate(self, *, publish: bool = True) -> Dict[str, Any]:
        """The mounted candidate becomes the primary (next generation)."""
        state = self._lifecycle.candidate()
        if state is None:
            raise ReloadError("no candidate is mounted")
        self._bind_model(state.handle.model)
        try:
            handle = self._lifecycle.promote_candidate()
        except RuntimeError as exc:
            raise ReloadError(str(exc)) from exc
        self._arm_drift(handle.model, handle.path)
        self._publish(publish)
        return {"model": self.model_info(), "generation": handle.generation}

    def feedback(self, rows: Any, labels: Any) -> Dict[str, Any]:
        """Absorb labelled follow-up rows into the continual trainer."""
        if self._trainer is None:
            raise ValidationError(
                "the served model has no fitted record encoder; follow-up "
                "feedback is not supported"
            )
        arr = self._validate(rows)
        try:
            total = self._trainer.add(arr, labels)
        except ValueError as exc:
            raise ValidationError(str(exc)) from exc
        return {
            "rows": int(arr.shape[0]),
            "total": total,
            "ready": self._trainer.ready,
        }

    def build_follow_up_candidate(
        self, path: str, *, mount: bool = False
    ) -> Dict[str, Any]:
        """Snapshot the follow-up trainer as a candidate artifact."""
        if self._trainer is None:
            raise ValidationError(
                "the served model has no fitted record encoder; follow-up "
                "feedback is not supported"
            )
        try:
            out = self._trainer.build_candidate(path)
        except RuntimeError as exc:
            raise ReloadError(str(exc)) from exc
        result: Dict[str, Any] = {"artifact": str(out)}
        if mount:
            result.update(self.mount_candidate(str(out)))
        return result

    def lifecycle_status(self) -> Dict[str, Any]:
        """The ``GET /v1/admin/lifecycle`` body: routing, drift, follow-ups."""
        status = self._lifecycle.describe()
        status["generation"] = status["primary"]["generation"]
        status["drift"] = (
            self._drift.status() if self._drift is not None else None
        )
        status["follow_up"] = (
            self._trainer.describe() if self._trainer is not None else None
        )
        state = self._lifecycle.candidate()
        if state is not None and state.shadow is not None:
            status["disagreements"] = state.shadow.disagreements()
        return status

    # -- request path --------------------------------------------------
    def _validate(self, rows: Sequence[Sequence[float]]) -> np.ndarray:
        if not isinstance(rows, (list, tuple)) or len(rows) == 0:
            raise ValidationError("rows must be a non-empty list of feature rows")
        if len(rows) > self.config.max_rows_per_request:
            raise PayloadTooLargeError(
                f"request carries {len(rows)} rows; the per-request limit is "
                f"{self.config.max_rows_per_request}"
            )
        try:
            arr = np.asarray(rows, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"rows are not a numeric matrix: {exc}") from exc
        if arr.ndim != 2:
            raise ValidationError(
                f"rows must form a 2-d matrix, got shape {arr.shape}"
            )
        if not np.all(np.isfinite(arr)):
            raise ValidationError("rows contain NaN or infinite values")
        expected = getattr(self.model, "n_features_in_", None)
        if expected is not None and arr.shape[1] != expected:
            raise ValidationError(
                f"rows have {arr.shape[1]} features; the model expects {expected}"
            )
        return arr

    def _predict_batch(self, stacked: np.ndarray) -> np.ndarray:
        # One handle read per flush: requests collected into this batch
        # all run on the same model even if a swap lands mid-flush.
        handle = self._lifecycle.primary()
        out = np.asarray(handle.model.predict(stacked))
        self._lifecycle.mirror(stacked, out)
        return out

    def _submit(self, arr: np.ndarray):
        try:
            return self._batcher.submit(arr)
        except QueueFullError:
            raise  # admission control — 429, not 503
        except RuntimeError as exc:
            # The batcher refuses submissions while stopped (server
            # shutting down / not yet started): a structured 503, never
            # a bare 500.
            raise NotReadyError(str(exc)) from exc

    def _predict_candidate(
        self, handle: ModelHandle, arr: np.ndarray
    ) -> Optional[np.ndarray]:
        """A/B-routed predict; None falls the request back to the primary."""
        started = time.perf_counter()
        try:
            out = np.asarray(handle.model.predict(arr))
        except Exception:
            record_candidate_error()
            return None
        record_ab_candidate(time.perf_counter() - started)
        return out

    def predict_with_info(self, rows: Sequence[Sequence[float]]) -> tuple:
        """Validate, route (A/B), predict; returns ``(labels, model_block)``.

        The model block is read from the handle that actually served the
        request, so post-swap responses report the new ``artifact_sha``
        and A/B-routed responses report the candidate's.
        """
        started = time.perf_counter()
        arr = self._validate(rows)
        if not self.ready:
            raise NotReadyError("service is not running; no model is being served")
        ab_handle = self._lifecycle.take_ab_slot()
        if ab_handle is not None:
            out = self._predict_candidate(ab_handle, arr)
            if out is not None:
                from repro.persist import SCHEMA_VERSION

                record_request(time.perf_counter() - started)
                return out.tolist(), ab_handle.info(SCHEMA_VERSION)
        pending = self._submit(arr)
        if not pending.event.wait(timeout=self.config.request_timeout_s):
            record_error()
            raise ServeError(
                f"request timed out after {self.config.request_timeout_s}s "
                f"waiting for a batch slot"
            )
        if pending.error is not None:
            record_error()
            raise PredictFailedError(
                f"batched predict failed: {pending.error}"
            ) from pending.error
        record_request(time.perf_counter() - started)
        assert pending.result is not None
        return np.asarray(pending.result).tolist(), self.model_info()

    def predict(self, rows: Sequence[Sequence[float]]) -> List[Any]:
        """Validate, enqueue, wait for the fused flush, return labels.

        Raises the exception hierarchy above; the returned labels are
        plain Python scalars (JSON-ready).
        """
        labels, _ = self.predict_with_info(rows)
        return labels

    def describe(self) -> dict:
        """Model/runtime summary served by ``GET /readyz`` and the CLI."""
        from repro.kernels import active_backend

        model = self.model
        info = {
            "model": type(model).__name__,
            "ready": self.ready,
            "max_batch": self.config.max_batch,
            "max_wait_ms": self.config.max_wait_ms,
            "queue_size": self.config.queue_size,
            "kernel_backend": active_backend(),
            "workers": self.config.workers,
            "shards": self.config.shards,
            "artifact_sha": self.artifact_sha,
            "generation": self.generation,
            "lifecycle": self._lifecycle.describe(),
        }
        if self._drift is not None:
            info["drift"] = self._drift.status()
        n_features = getattr(model, "n_features_in_", None)
        if n_features is not None:
            info["n_features"] = int(n_features)
        classes = getattr(model, "classes_", None)
        if classes is not None:
            info["classes"] = np.asarray(classes).tolist()
        return info


__all__ = [
    "InferenceService",
    "NotReadyError",
    "PayloadTooLargeError",
    "PredictFailedError",
    "ReloadError",
    "ServeError",
    "ValidationError",
]
