"""repro: HDC feature extraction for type-2 diabetes detection (IPDPSW 2023 reproduction)."""

from __future__ import annotations


def _resolve_version() -> str:
    """Single-source version: installed metadata first, pyproject fallback.

    ``pyproject.toml`` is the only place the version is written.  Installed
    (``pip install -e .`` or a wheel) the canonical value comes back through
    ``importlib.metadata``; running straight off ``PYTHONPATH=src`` the
    checkout's own pyproject is parsed instead, so artifacts stamped by
    :mod:`repro.persist` carry the right version either way.
    """
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro")
    except PackageNotFoundError:
        pass
    except Exception:  # pragma: no cover - metadata backend misbehaving
        pass
    import re
    from pathlib import Path

    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    try:
        match = re.search(
            r'^version\s*=\s*"([^"]+)"', pyproject.read_text(encoding="utf-8"), re.M
        )
    except OSError:
        match = None
    return match.group(1) if match else "0.0.0+unknown"


__version__ = _resolve_version()
