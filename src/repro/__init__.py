"""repro: HDC feature extraction for type-2 diabetes detection (IPDPSW 2023 reproduction)."""
__version__ = "1.0.0"
