"""Table formatting + CLI (S15): regenerate every table of the paper.

``python -m repro.eval.tables <1|2|3|4|5|runtime|ablation> [--fast]``
prints the corresponding table in the paper's layout.  The heavy lifting
lives in :mod:`repro.eval.experiments`; this module is presentation only,
so benchmarks and tests consume the structured results directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.data.datasets import Dataset
from repro.data.pima import load_pima_r
from repro.eval import experiments as xp

# Table I rows use the paper's display names/order.
_TABLE1_ORDER = [
    ("age", "Age"),
    ("pregnancies", "Pregnancies"),
    ("glucose", "Glucose"),
    ("bmi", "BMI"),
    ("skin_thickness", "Skin Thickness"),
    ("insulin", "Insulin"),
    ("dpf", "DPF"),
    ("blood_pressure", "Blood Pressure"),
]


def format_grid(headers: Sequence[str], rows: List[Sequence[str]]) -> str:
    """Monospace grid with per-column width; header separator line."""
    cols = len(headers)
    for r in rows:
        if len(r) != cols:
            raise ValueError(f"row has {len(r)} cells, expected {cols}")
    widths = [
        max(len(str(headers[j])), *(len(str(r[j])) for r in rows)) if rows else len(str(headers[j]))
        for j in range(cols)
    ]
    def line(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths)).rstrip()
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), sep] + [line(r) for r in rows])


def table1(ds: Optional[Dataset] = None) -> str:
    """Table I: per-class mean and range of the Pima R features."""
    ds = ds if ds is not None else load_pima_r()
    rows = []
    for key, label in _TABLE1_ORDER:
        j = ds.feature_names.index(key)
        cells = [label]
        for cls in (1, 0):
            col = ds.X[ds.y == cls, j]
            decimals = 2 if key == "dpf" else 0
            mean = f"{col.mean():.{decimals}f}"
            lo = f"{col.min():.{decimals}f}"
            hi = f"{col.max():.{decimals}f}"
            cells.append(f"{mean} ({lo}-{hi})")
        rows.append(cells)
    return format_grid(["Feature", "Positive", "Negative"], rows)


def _pct(x: float) -> str:
    return f"{100 * x:.1f}%"


def table2(results: Dict[str, Dict[str, float]]) -> str:
    """Table II layout: Hamming + Sequential NN, features vs hypervectors."""
    datasets = list(results)
    headers = ["Model"] + [f"{d} ({rep})" for d in datasets for rep in ("Feat", "HV")]
    ham_row = ["Hamming"]
    nn_row = ["Sequential NN"]
    for d in datasets:
        ham_row += ["-", _pct(results[d]["hamming"])]
        nn_row += [_pct(results[d]["nn_features"]), _pct(results[d]["nn_hypervectors"])]
    return format_grid(headers, [ham_row, nn_row])


def table3(results: Dict[str, Dict[str, Dict[str, float]]], *, kind: str = "cv") -> str:
    """Table III layout: 10-fold accuracy, models x datasets x repr.

    ``kind="cv"`` (default) shows the fold-held-out accuracy, which is what
    the paper's reference notebooks report under 10-fold CV (the paper
    labels it "training accuracy"; its magnitudes match held-out scores —
    see EXPERIMENTS.md).  ``kind="fit"`` shows accuracy on the fitted folds.
    """
    if kind not in ("cv", "fit"):
        raise ValueError(f"kind must be 'cv' or 'fit', got {kind!r}")
    key_f = "features_test" if kind == "cv" else "features"
    key_h = "hypervectors_test" if kind == "cv" else "hypervectors"
    datasets = list(results)
    headers = ["Model"] + [f"{d} ({rep})" for d in datasets for rep in ("Feat", "HV")]
    rows = []
    model_names = list(next(iter(results.values())))
    for model in model_names:
        row = [model]
        for d in datasets:
            cell = results[d][model]
            row += [_pct(cell[key_f]), _pct(cell[key_h])]
        rows.append(row)
    return format_grid(headers, rows)


_METRIC_COLS = ["precision", "recall", "specificity", "f1", "accuracy"]


def table45(results: Dict[str, Dict[str, Dict[str, float]]], title: str) -> str:
    """Tables IV/V layout: five metrics, features vs hypervectors."""
    headers = ["Model"] + [
        f"{metric[:4].title()} ({rep})" for metric in _METRIC_COLS for rep in ("F", "HD")
    ]
    rows = []
    for model, reps in results.items():
        row = [model]
        for metric in _METRIC_COLS:
            for rep in ("features", "hypervectors"):
                report = reps.get(rep)
                if report is None:
                    row.append("-")
                elif metric == "accuracy":
                    row.append(_pct(report[metric]))
                else:
                    row.append(f"{report[metric]:.3f}")
        rows.append(row)
    return f"{title}\n" + format_grid(headers, rows)


def runtime_table(results: Dict[str, Dict[str, float]]) -> str:
    headers = ["Model", "Features (s)", "Hypervectors (s)", "Slowdown"]
    rows = [
        [
            name,
            f"{cell['features_s']:.3f}",
            f"{cell['hypervectors_s']:.3f}",
            f"{cell['ratio']:.1f}x",
        ]
        for name, cell in results.items()
    ]
    return format_grid(headers, rows)


def stats_report(config=None, datasets=None) -> str:
    """Statistical backing for the headline comparisons.

    * bootstrap 95% CI of the Hamming model's LOOCV accuracy per dataset;
    * McNemar's test of Hamming vs a Random Forest trained on the same
      hypervectors, predictions compared on the LOOCV/full-fit records.

    (Descriptive: the RF is fitted on all records, so its side is
    optimistic; the point is the machinery, used more carefully in
    EXPERIMENTS.md.)
    """
    from repro.eval import experiments as xp_mod
    from repro.eval.crossval import leave_one_out_hamming
    from repro.eval.stats import bootstrap_accuracy_ci, mcnemar_test
    from repro.ml.ensemble import RandomForestClassifier

    config = config or xp_mod.ExperimentConfig.paper()
    datasets = datasets or xp_mod.default_datasets(config)
    rows = []
    for name, ds in datasets.items():
        packed, dense, _ = xp_mod.encode_dataset(ds, config)
        loo = leave_one_out_hamming(packed, ds.y)
        point, lo, hi = bootstrap_accuracy_ci(loo.y_true, loo.y_pred, seed=config.seed)
        rf = RandomForestClassifier(
            n_estimators=config.forest_estimators, random_state=config.seed
        ).fit(dense, ds.y)
        rf_pred = rf.predict(dense)
        mc = mcnemar_test(ds.y, loo.y_pred, rf_pred)
        rows.append(
            [
                name,
                f"{point:.1%} [{lo:.1%}, {hi:.1%}]",
                f"b={mc.b} c={mc.c}",
                f"{mc.p_value:.3g}",
            ]
        )
    return format_grid(
        ["Dataset", "Hamming LOOCV acc (95% CI)", "Discordant (Hamming+, RF+)", "McNemar p"],
        rows,
    )


def ablation_tables(dim_results: Dict[int, float], enc_results: Dict[str, float]) -> str:
    part1 = format_grid(
        ["Dimensionality", "Hamming LOOCV acc"],
        [[str(k), _pct(v)] for k, v in dim_results.items()],
    )
    part2 = format_grid(
        ["Encoding variant", "Accuracy"],
        [[k, _pct(v)] for k, v in enc_results.items()],
    )
    return part1 + "\n\n" + part2


# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-tables",
        description="Regenerate the paper's tables (IPDPSW 2023 HDC diabetes).",
    )
    parser.add_argument(
        "table",
        choices=["1", "2", "3", "4", "5", "runtime", "ablation", "stats", "all"],
        help="which artefact to regenerate",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="small dimensionality/repeats preset (seconds instead of minutes)",
    )
    parser.add_argument("--dim", type=int, default=None, help="override hypervector dim")
    parser.add_argument("--seed", type=int, default=None, help="override master seed")
    args = parser.parse_args(argv)

    config = xp.ExperimentConfig.fast() if args.fast else xp.ExperimentConfig.paper()
    if args.dim is not None or args.seed is not None:
        from dataclasses import replace

        overrides = {}
        if args.dim is not None:
            overrides["dim"] = args.dim
        if args.seed is not None:
            overrides["seed"] = args.seed
        config = replace(config, **overrides)

    wanted = (
        [args.table]
        if args.table != "all"
        else ["1", "2", "3", "4", "5", "runtime", "ablation", "stats"]
    )
    datasets = xp.default_datasets(config)
    for which in wanted:
        if which == "1":
            print("Table I - Pima R feature distribution (mean, range)")
            print(table1(datasets["pima_r"]))
        elif which == "2":
            print("Table II - testing accuracy (Hamming LOOCV / Sequential NN)")
            print(table2(xp.run_table2(config, datasets)))
        elif which == "3":
            print("Table III - 10-fold training accuracy")
            print(table3(xp.run_table3(config, datasets)))
        elif which == "4":
            print(table45(xp.run_table45("pima_m", config, datasets), "Table IV - Pima M test metrics"))
        elif which == "5":
            print(table45(xp.run_table45("sylhet", config, datasets), "Table V - Sylhet test metrics"))
        elif which == "stats":
            print("Statistical comparisons (bootstrap CI / McNemar)")
            print(stats_report(config, datasets))
        elif which == "runtime":
            print("Runtime study (SIII-A remarks)")
            print(runtime_table(xp.run_runtime_study(config, datasets)))
        elif which == "ablation":
            dims = (256, 1024, 4096) if args.fast else (1000, 2000, 5000, 10000, 20000)
            print("Ablations (A1 dimensionality, A2 encoding)")
            print(
                ablation_tables(
                    xp.run_dimension_ablation(dims, config, datasets=datasets),
                    xp.run_encoding_ablation(config, datasets=datasets),
                )
            )
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
