"""Statistical comparison utilities for the experiment tables.

The paper compares models by raw accuracy; when reproducing on a
different substrate it is worth knowing whether observed gaps are
meaningful, so EXPERIMENTS.md quotes bootstrap confidence intervals and
McNemar tests computed here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import stats

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_consistent_length, column_or_1d


def bootstrap_accuracy_ci(
    y_true,
    y_pred,
    *,
    n_boot: int = 2000,
    alpha: float = 0.05,
    seed: SeedLike = 0,
) -> Tuple[float, float, float]:
    """Percentile-bootstrap CI for accuracy: ``(point, lo, hi)``."""
    y_true = column_or_1d(y_true, name="y_true")
    y_pred = column_or_1d(y_pred, name="y_pred")
    check_consistent_length(y_true, y_pred, names=("y_true", "y_pred"))
    if y_true.size == 0:
        raise ValueError("empty inputs")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    correct = (y_true == y_pred).astype(np.float64)
    point = float(correct.mean())
    rng = as_generator(seed)
    idx = rng.integers(0, correct.size, size=(n_boot, correct.size))
    samples = correct[idx].mean(axis=1)
    lo, hi = np.quantile(samples, [alpha / 2, 1 - alpha / 2])
    return point, float(lo), float(hi)


@dataclass(frozen=True)
class McNemarResult:
    """Paired-classifier comparison on one test set."""

    b: int  # model A right, model B wrong
    c: int  # model A wrong, model B right
    statistic: float
    p_value: float

    @property
    def discordant(self) -> int:
        return self.b + self.c


def mcnemar_test(y_true, pred_a, pred_b, *, exact_threshold: int = 25) -> McNemarResult:
    """McNemar's test for two classifiers on the same samples.

    Uses the exact binomial test when the discordant count is small
    (``< exact_threshold``), else the continuity-corrected chi-square.
    """
    y_true = column_or_1d(y_true, name="y_true")
    pred_a = column_or_1d(pred_a, name="pred_a")
    pred_b = column_or_1d(pred_b, name="pred_b")
    check_consistent_length(y_true, pred_a, pred_b, names=("y_true", "pred_a", "pred_b"))
    a_right = pred_a == y_true
    b_right = pred_b == y_true
    b_count = int(np.sum(a_right & ~b_right))
    c_count = int(np.sum(~a_right & b_right))
    n = b_count + c_count
    if n == 0:
        return McNemarResult(b=0, c=0, statistic=0.0, p_value=1.0)
    if n < exact_threshold:
        p = float(stats.binomtest(min(b_count, c_count), n, 0.5).pvalue)
        return McNemarResult(b=b_count, c=c_count, statistic=float(min(b_count, c_count)), p_value=p)
    stat = (abs(b_count - c_count) - 1) ** 2 / n
    p = float(stats.chi2.sf(stat, df=1))
    return McNemarResult(b=b_count, c=c_count, statistic=float(stat), p_value=p)


def paired_fold_ttest(scores_a: np.ndarray, scores_b: np.ndarray) -> Tuple[float, float]:
    """Paired t-test over per-fold scores; returns ``(t, p)``.

    Fold scores are correlated so this is an optimistic test (Nadeau &
    Bengio); used descriptively in EXPERIMENTS.md, not for claims.
    """
    scores_a = np.asarray(scores_a, dtype=np.float64)
    scores_b = np.asarray(scores_b, dtype=np.float64)
    if scores_a.shape != scores_b.shape or scores_a.ndim != 1:
        raise ValueError("score vectors must be 1-d and equal length")
    if scores_a.size < 2:
        raise ValueError("need at least 2 folds")
    diff = scores_a - scores_b
    if np.allclose(diff, 0.0):
        return 0.0, 1.0
    res = stats.ttest_rel(scores_a, scores_b)
    return float(res.statistic), float(res.pvalue)
