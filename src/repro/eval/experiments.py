"""Experiment harness (S15): one function per paper artefact.

Each ``run_*`` function regenerates the data behind one table of the
paper (see DESIGN.md §4 for the index) and returns plain dict/row
structures; :mod:`repro.eval.tables` formats them, and the scripts in
``benchmarks/`` time and sanity-check them.

The configuration dataclass has a ``fast()`` preset (small dimensionality,
few repeats) used by tests so the full pipeline is exercised end-to-end in
seconds; benchmark and CLI runs use the paper-scale defaults (10,000-bit
hypervectors, 10-fold CV, 10 NN repeats).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.classifier import PrototypeClassifier
from repro.core.records import RecordEncoder
from repro.data.datasets import Dataset
from repro.data.pima import generate_pima, load_pima_m, load_pima_r
from repro.data.sylhet import load_sylhet
from repro.eval.crossval import (
    cross_validate,
    leave_one_out_hamming,
    train_test_split,
    train_val_test_split,
)
from repro.eval.metrics import classification_report
from repro.ml.base import BaseEstimator
from repro.obs import span
from repro.ml.ensemble import (
    CatBoostClassifier,
    LGBMClassifier,
    RandomForestClassifier,
    XGBClassifier,
)
from repro.ml.linear import LogisticRegression, SGDClassifier
from repro.ml.neighbors import KNeighborsClassifier
from repro.ml.neural import SequentialNN
from repro.ml.pipeline import ScaledClassifier
from repro.ml.svm import SVC
from repro.ml.tree import DecisionTreeClassifier
from repro.utils.rng import derive_seed


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by every experiment.

    Attributes
    ----------
    dim:
        Hypervector dimensionality (paper: 10,000).
    seed:
        Master seed for encoders, models and splits.
    data_seed:
        Seed of the synthetic dataset generators (separate so the same
        "population" can be analysed under different model seeds).
    n_folds:
        K for the Table III cross-validation.
    nn_repeats / nn_epochs / nn_patience:
        Sequential-NN protocol (paper: 10 repeats, 1000 epochs, 20).
    boosted_estimators / forest_estimators:
        Ensemble sizes.  The references use 100; 50 keeps the 10k-bit
        boosted runs tractable on one core while preserving ranking.
    test_size:
        Held-out fraction for Tables IV/V (paper: 10%).
    loo_n_jobs:
        Worker count for the streaming leave-one-out search engine
        (``None`` defers to ``REPRO_WORKERS``; results are identical for
        any value — the engine's merge order is deterministic).
    """

    dim: int = 10_000
    seed: int = 7
    data_seed: int = 2023
    n_folds: int = 10
    nn_repeats: int = 10
    nn_epochs: int = 1000
    nn_patience: int = 20
    boosted_estimators: int = 50
    forest_estimators: int = 100
    test_size: float = 0.10
    sgd_max_iter: int = 60
    svc_max_iter: int = 60
    loo_n_jobs: Optional[int] = None

    @staticmethod
    def paper() -> "ExperimentConfig":
        return ExperimentConfig()

    @staticmethod
    def fast() -> "ExperimentConfig":
        """Seconds-scale preset used by the test suite."""
        return ExperimentConfig(
            dim=1024,
            n_folds=3,
            nn_repeats=2,
            nn_epochs=40,
            nn_patience=10,
            boosted_estimators=10,
            forest_estimators=15,
            sgd_max_iter=15,
            svc_max_iter=15,
        )


# ----------------------------------------------------------------------
# Datasets and encodings
# ----------------------------------------------------------------------
def default_datasets(config: ExperimentConfig) -> Dict[str, Dataset]:
    """The paper's three working datasets, from one synthetic population."""
    base = generate_pima(seed=config.data_seed)
    return {
        "pima_r": load_pima_r(base=base),
        "pima_m": load_pima_m(base=base),
        "sylhet": load_sylhet(seed=config.data_seed),
    }


def encode_dataset(
    ds: Dataset, config: ExperimentConfig
) -> Tuple[np.ndarray, np.ndarray, RecordEncoder]:
    """Fit a record encoder on the dataset; return packed + dense forms.

    Encoding is fitted on the full dataset, as in the paper: the level
    encoder's min/max and the per-feature seeds are data-wide properties
    (the paper computes hypervectors once, before any split).
    """
    with span("eval.encode_dataset", dataset=ds.name, rows=ds.X.shape[0], dim=config.dim):
        enc = RecordEncoder(
            specs=ds.specs, dim=config.dim, seed=derive_seed(config.seed, "encode", ds.name)
        ).fit(ds.X)
        packed = enc.transform(ds.X)
        dense = enc.transform_dense(ds.X).astype(np.float64)
        return packed, dense, enc


# ----------------------------------------------------------------------
# Model grid (paper §II: the 9 sklearn-equivalent models)
# ----------------------------------------------------------------------
def model_grid(
    config: ExperimentConfig, *, scaled: bool
) -> Dict[str, Callable[[], BaseEstimator]]:
    """Factories for the Table III-V model roster.

    ``scaled=True`` wraps scale-sensitive models in a StandardScaler
    pipeline (raw clinical features); hypervector input uses ``False``.
    """
    seed = config.seed

    def wrap(est: BaseEstimator) -> BaseEstimator:
        return ScaledClassifier(est) if scaled else est

    return {
        "Random Forest": lambda: RandomForestClassifier(
            n_estimators=config.forest_estimators, random_state=seed
        ),
        "KNN": lambda: wrap(KNeighborsClassifier(n_neighbors=5)),
        "Decision Tree": lambda: DecisionTreeClassifier(random_state=seed),
        "XGBoost": lambda: XGBClassifier(
            n_estimators=config.boosted_estimators, random_state=seed
        ),
        "CatBoost": lambda: CatBoostClassifier(
            n_estimators=config.boosted_estimators, random_state=seed
        ),
        "SGD": lambda: wrap(
            SGDClassifier(max_iter=config.sgd_max_iter, random_state=seed)
        ),
        "Logistic Regression": lambda: wrap(LogisticRegression()),
        "SVC": lambda: wrap(SVC(max_iter=config.svc_max_iter, random_state=seed)),
        "LGBM": lambda: LGBMClassifier(
            n_estimators=config.boosted_estimators,
            min_samples_leaf=5,
            random_state=seed,
        ),
    }


MODEL_ORDER = [
    "Random Forest",
    "KNN",
    "Decision Tree",
    "XGBoost",
    "CatBoost",
    "SGD",
    "Logistic Regression",
    "SVC",
    "LGBM",
]


# ----------------------------------------------------------------------
# Table II — Hamming LOOCV + Sequential NN (features vs hypervectors)
# ----------------------------------------------------------------------
def run_table2(
    config: Optional[ExperimentConfig] = None,
    datasets: Optional[Dict[str, Dataset]] = None,
) -> Dict[str, Dict[str, float]]:
    """Testing accuracy of the Hamming model and the Sequential NN.

    Returns ``{dataset: {"hamming": acc, "nn_features": acc,
    "nn_hypervectors": acc}}`` with accuracies in [0, 1].
    """
    config = config or ExperimentConfig.paper()
    datasets = datasets or default_datasets(config)
    out: Dict[str, Dict[str, float]] = {}
    for name, ds in datasets.items():
        with span("eval.experiments.table2", dataset=name):
            out[name] = _table2_dataset(name, ds, config)
    return out


def _table2_dataset(
    name: str, ds: Dataset, config: ExperimentConfig
) -> Dict[str, float]:
    """One dataset's Table II row (split out so each gets its own span)."""
    packed, dense, _ = encode_dataset(ds, config)
    loo = leave_one_out_hamming(packed, ds.y, n_jobs=config.loo_n_jobs)
    # The paper's NN does "little preprocessing of data": raw features
    # go in unscaled (which is what caps its Pima accuracy at ~71%
    # and gives hypervectors their +8-point headroom).  Hypervector
    # input is 0/1 and needs no scaling either.
    nn_feat = _nn_repeated_accuracy(ds.X, ds.y, config, scaled=False, tag=f"{name}-f")
    nn_hv = _nn_repeated_accuracy(dense, ds.y, config, scaled=False, tag=f"{name}-h")
    return {
        "hamming": loo.accuracy,
        "nn_features": nn_feat,
        "nn_hypervectors": nn_hv,
    }


def _nn_repeated_accuracy(
    X: np.ndarray,
    y: np.ndarray,
    config: ExperimentConfig,
    *,
    scaled: bool,
    tag: str,
) -> float:
    """The paper's §II-D protocol: 70/15/15 split, early stopping on the
    validation set, mean test accuracy over ``nn_repeats`` runs."""
    accs = []
    for rep in range(config.nn_repeats):
        split_seed = derive_seed(config.seed, "nn-split", tag, rep)
        X_tr, X_val, X_te, y_tr, y_val, y_te = train_val_test_split(
            X, y, val_size=0.15, test_size=0.15, stratify=y, seed=split_seed
        )
        model: BaseEstimator = SequentialNN(
            hidden=(32, 32),
            epochs=config.nn_epochs,
            patience=config.nn_patience,
            validation_fraction=0.0,
            random_state=derive_seed(config.seed, "nn-init", tag, rep),
        )
        if scaled:
            model = ScaledClassifier(model)
        # Early stopping monitors the explicit validation part: stack the
        # train+val and let the NN carve the same fraction back out.
        X_fit = np.vstack([X_tr, X_val])
        y_fit = np.concatenate([y_tr, y_val])
        frac = X_val.shape[0] / X_fit.shape[0]
        inner = model.estimator if isinstance(model, ScaledClassifier) else model
        inner.set_params(validation_fraction=frac, monitor="val")
        model.fit(X_fit, y_fit)
        accs.append(model.score(X_te, y_te))
    return float(np.mean(accs))


# ----------------------------------------------------------------------
# Table III — 10-fold training accuracy across the model grid
# ----------------------------------------------------------------------
def run_table3(
    config: Optional[ExperimentConfig] = None,
    datasets: Optional[Dict[str, Dataset]] = None,
    models: Optional[List[str]] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Training accuracy per (dataset, model, input-representation).

    Returns ``{dataset: {model: {"features": acc, "hypervectors": acc}}}``.
    """
    config = config or ExperimentConfig.paper()
    datasets = datasets or default_datasets(config)
    chosen = models or MODEL_ORDER
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name, ds in datasets.items():
        with span("eval.experiments.table3", dataset=name, models=len(chosen)):
            _, dense, _ = encode_dataset(ds, config)
            grid_f = model_grid(config, scaled=True)
            grid_h = model_grid(config, scaled=False)
            per_model: Dict[str, Dict[str, float]] = {}
            for model_name in chosen:
                res_f = cross_validate(
                    grid_f[model_name](), ds.X, ds.y, n_splits=config.n_folds, seed=config.seed
                )
                res_h = cross_validate(
                    grid_h[model_name](), dense, ds.y, n_splits=config.n_folds, seed=config.seed
                )
                per_model[model_name] = {
                    "features": res_f.mean_train,
                    "hypervectors": res_h.mean_train,
                    "features_test": res_f.mean_test,
                    "hypervectors_test": res_h.mean_test,
                }
            out[name] = per_model
    return out


# ----------------------------------------------------------------------
# Tables IV & V — held-out metrics on Pima M / Sylhet
# ----------------------------------------------------------------------
def run_table45(
    dataset_name: str,
    config: Optional[ExperimentConfig] = None,
    datasets: Optional[Dict[str, Dataset]] = None,
    models: Optional[List[str]] = None,
    *,
    include_hamming: Optional[bool] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """90/10-split metrics for every model, features vs hypervectors.

    Returns ``{model: {"features": report, "hypervectors": report}}``
    where each report has precision/recall/specificity/f1/accuracy.
    Table V (sylhet) also includes the Hamming LOOCV row, as in the paper.
    """
    config = config or ExperimentConfig.paper()
    datasets = datasets or default_datasets(config)
    if dataset_name not in datasets:
        raise KeyError(f"unknown dataset {dataset_name!r}; have {sorted(datasets)}")
    ds = datasets[dataset_name]
    if include_hamming is None:
        include_hamming = dataset_name == "sylhet"
    chosen = models or MODEL_ORDER
    with span("eval.experiments.table45", dataset=dataset_name, models=len(chosen)):
        return _table45_body(
            dataset_name, ds, config, chosen, include_hamming=include_hamming
        )


def _table45_body(
    dataset_name: str,
    ds: Dataset,
    config: ExperimentConfig,
    chosen: List[str],
    *,
    include_hamming: bool,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Table IV/V body (split out so the span wraps one clean call)."""
    packed, dense, _ = encode_dataset(ds, config)

    split_seed = derive_seed(config.seed, "table45", dataset_name)
    idx = np.arange(ds.n_samples)
    idx_tr, idx_te = train_test_split(
        idx, test_size=config.test_size, stratify=ds.y, seed=split_seed
    )
    y_tr, y_te = ds.y[idx_tr], ds.y[idx_te]

    grid_f = model_grid(config, scaled=True)
    grid_h = model_grid(config, scaled=False)
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for model_name in chosen:
        reports = {}
        for rep_name, grid, X in (
            ("features", grid_f, ds.X),
            ("hypervectors", grid_h, dense),
        ):
            model = grid[model_name]()
            model.fit(X[idx_tr], y_tr)
            pred = model.predict(X[idx_te])
            reports[rep_name] = classification_report(y_te, pred)
        out[model_name] = reports
    if include_hamming:
        loo = leave_one_out_hamming(packed, ds.y, n_jobs=config.loo_n_jobs)
        out["Hamming"] = {"hypervectors": loo.report}
    return out


# ----------------------------------------------------------------------
# R1 — runtime study (§III-A remarks)
# ----------------------------------------------------------------------
def run_runtime_study(
    config: Optional[ExperimentConfig] = None,
    datasets: Optional[Dict[str, Dataset]] = None,
    *,
    dataset_name: str = "sylhet",
    nn_epochs: int = 20,
) -> Dict[str, Dict[str, float]]:
    """Wall-clock comparison of feature vs hypervector inputs.

    Reproduces the two §III-A timing observations:

    * per-epoch Sequential-NN time is similar for both representations;
    * the boosted models slow down by roughly an order of magnitude on
      hypervectors.

    Returns ``{model: {"features_s": t, "hypervectors_s": t, "ratio": r}}``
    (NN rows report seconds per epoch).
    """
    config = config or ExperimentConfig.paper()
    datasets = datasets or default_datasets(config)
    ds = datasets[dataset_name]
    with span("eval.experiments.runtime_study", dataset=dataset_name):
        return _runtime_study_body(ds, config, nn_epochs=nn_epochs)


def _runtime_study_body(
    ds: Dataset, config: ExperimentConfig, *, nn_epochs: int
) -> Dict[str, Dict[str, float]]:
    """Runtime-study body (split out so the span wraps one clean call)."""
    _, dense, _ = encode_dataset(ds, config)
    out: Dict[str, Dict[str, float]] = {}

    def timed_fit(factory: Callable[[], BaseEstimator], X: np.ndarray) -> float:
        model = factory()
        t0 = time.perf_counter()
        model.fit(X, ds.y)
        return time.perf_counter() - t0

    for model_name in ("XGBoost", "CatBoost", "LGBM", "Random Forest"):
        grid_f = model_grid(config, scaled=True)
        grid_h = model_grid(config, scaled=False)
        tf = timed_fit(grid_f[model_name], ds.X)
        th = timed_fit(grid_h[model_name], dense)
        out[model_name] = {
            "features_s": tf,
            "hypervectors_s": th,
            "ratio": th / max(tf, 1e-9),
        }

    def nn_epoch_time(X: np.ndarray) -> float:
        model = SequentialNN(
            hidden=(32, 32), epochs=nn_epochs, patience=None, random_state=config.seed
        )
        t0 = time.perf_counter()
        model.fit(X, ds.y)
        return (time.perf_counter() - t0) / model.n_epochs_

    tf = nn_epoch_time(ds.X)
    th = nn_epoch_time(dense)
    out["Sequential NN (per epoch)"] = {
        "features_s": tf,
        "hypervectors_s": th,
        "ratio": th / max(tf, 1e-9),
    }
    return out


# ----------------------------------------------------------------------
# A1 — dimensionality ablation (§II's 10k-vs-20k/30k remark)
# ----------------------------------------------------------------------
def run_dimension_ablation(
    dims: Tuple[int, ...] = (1_000, 2_000, 5_000, 10_000, 20_000),
    config: Optional[ExperimentConfig] = None,
    dataset_name: str = "pima_r",
    datasets: Optional[Dict[str, Dataset]] = None,
) -> Dict[int, float]:
    """Hamming LOOCV accuracy as a function of hypervector dimensionality."""
    config = config or ExperimentConfig.paper()
    datasets = datasets or default_datasets(config)
    ds = datasets[dataset_name]
    out: Dict[int, float] = {}
    for dim in dims:
        with span("eval.experiments.dim_ablation", dataset=dataset_name, dim=dim):
            cfg = replace(config, dim=dim)
            packed, _, _ = encode_dataset(ds, cfg)
            out[dim] = leave_one_out_hamming(packed, ds.y, n_jobs=cfg.loo_n_jobs).accuracy
    return out


# ----------------------------------------------------------------------
# A2 — encoding ablation (tie rule / level quantisation / model variant)
# ----------------------------------------------------------------------
def run_encoding_ablation(
    config: Optional[ExperimentConfig] = None,
    dataset_name: str = "pima_r",
    datasets: Optional[Dict[str, Dataset]] = None,
) -> Dict[str, float]:
    """LOOCV accuracy under encoding design variations.

    Variants: majority-vote tie rule (paper's 1 vs 0 vs random), quantised
    level encoding (16 levels), and the prototype (bundle-per-class)
    classifier as a cheaper alternative to 1-NN.
    """
    config = config or ExperimentConfig.paper()
    datasets = datasets or default_datasets(config)
    ds = datasets[dataset_name]
    with span("eval.experiments.encoding_ablation", dataset=dataset_name):
        return _encoding_ablation_body(ds, config)


def _encoding_ablation_body(ds: Dataset, config: ExperimentConfig) -> Dict[str, float]:
    """Encoding-ablation body (split out so the span wraps one clean call)."""
    out: Dict[str, float] = {}

    for tie in ("one", "zero", "random"):
        enc = RecordEncoder(
            specs=ds.specs,
            dim=config.dim,
            seed=derive_seed(config.seed, "ablate-tie", ds.name),
            tie=tie,
        ).fit(ds.X)
        packed = enc.transform(ds.X)
        out[f"tie={tie}"] = leave_one_out_hamming(packed, ds.y, n_jobs=config.loo_n_jobs).accuracy

    quant_specs = [replace_levels(s, 16) for s in ds.specs]
    enc = RecordEncoder(
        specs=quant_specs, dim=config.dim, seed=derive_seed(config.seed, "ablate-q", ds.name)
    ).fit(ds.X)
    out["levels=16"] = leave_one_out_hamming(enc.transform(ds.X), ds.y, n_jobs=config.loo_n_jobs).accuracy

    enc = RecordEncoder(
        specs=ds.specs,
        dim=config.dim,
        seed=derive_seed(config.seed, "ablate-bind", ds.name),
        bind_ids=True,
    ).fit(ds.X)
    out["bind_ids"] = leave_one_out_hamming(enc.transform(ds.X), ds.y, n_jobs=config.loo_n_jobs).accuracy

    enc = RecordEncoder(
        specs=ds.specs, dim=config.dim, seed=derive_seed(config.seed, "encode", ds.name)
    ).fit(ds.X)
    packed = enc.transform(ds.X)
    proto_accs = []
    idx = np.arange(ds.n_samples)
    for rep in range(5):
        tr, te = train_test_split(
            idx, test_size=0.2, stratify=ds.y, seed=derive_seed(config.seed, "proto", rep)
        )
        clf = PrototypeClassifier(dim=config.dim).fit(packed[tr], ds.y[tr])
        proto_accs.append(clf.score(packed[te], ds.y[te]))
    out["prototype"] = float(np.mean(proto_accs))
    return out


def replace_levels(spec, levels: int):
    """Quantised copy of a linear FeatureSpec (binary/categorical unchanged)."""
    from repro.core.records import FeatureSpec

    if spec.kind != "linear":
        return spec
    return FeatureSpec(spec.name, "linear", levels=levels)
