"""Cross-validation and splitting (S12) — the paper's three protocols.

* **Leave-one-out** for the pure Hamming model (§II-C): implemented
  *without* n refits — streamed through the triangular top-k engine
  (:func:`repro.core.search.loo_topk_hamming`), which computes each
  symmetric tile once and never materialises the ``n x n`` matrix.  This
  is the paper's point about HDC's algorithmic advantage: LOOCV on
  392-768 patients takes milliseconds, and memory stays O(tile) at any n.
* **(Stratified) k-fold** for the ML grid (§III-A, 10-fold).
* **70/15/15 train/val/test split** for the Sequential NN (§II-D) and
  **90/10 split** for Tables IV/V.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.core.search import loo_topk_hamming, loo_topk_hamming_reference, vote_counts
from repro.eval.metrics import classification_report
from repro.ml.base import clone
from repro.obs import span
from repro.parallel import parallel_map
from repro.utils.deprecation import renamed_kwargs
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_consistent_length, check_positive_int, column_or_1d


# ----------------------------------------------------------------------
# Splitters
# ----------------------------------------------------------------------
def train_test_split(
    *arrays,
    test_size: float = 0.25,
    stratify: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> List[np.ndarray]:
    """Shuffle-split each array into train/test parts.

    Returns ``[a_train, a_test, b_train, b_test, ...]``; with ``stratify``
    the class proportions are preserved in both parts (per-class
    round-half counts, matching sklearn's behaviour closely).
    """
    if not arrays:
        raise ValueError("at least one array required")
    if not 0.0 < test_size < 1.0:
        raise ValueError(f"test_size must be in (0, 1), got {test_size}")
    check_consistent_length(*arrays)
    n = np.asarray(arrays[0]).shape[0]
    rng = as_generator(seed)
    if stratify is None:
        perm = rng.permutation(n)
        n_test = max(1, int(round(test_size * n)))
        test_idx, train_idx = perm[:n_test], perm[n_test:]
    else:
        strat = column_or_1d(stratify, name="stratify")
        if strat.shape[0] != n:
            raise ValueError("stratify length mismatch")
        test_parts = []
        train_parts = []
        for cls in np.unique(strat):
            members = np.flatnonzero(strat == cls)
            members = rng.permutation(members)
            n_test_c = max(1, int(round(test_size * members.size)))
            test_parts.append(members[:n_test_c])
            train_parts.append(members[n_test_c:])
        test_idx = rng.permutation(np.concatenate(test_parts))
        train_idx = rng.permutation(np.concatenate(train_parts))
    out: List[np.ndarray] = []
    for arr in arrays:
        arr = np.asarray(arr)
        out.append(arr[train_idx])
        out.append(arr[test_idx])
    return out


def train_val_test_split(
    *arrays,
    val_size: float = 0.15,
    test_size: float = 0.15,
    stratify: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> List[np.ndarray]:
    """The paper's 70/15/15 protocol; returns triplets per array.

    Split is computed on an index array so every input (and the optional
    stratify labels) is partitioned identically, then the test slice is
    peeled first and the validation slice second.
    """
    if val_size + test_size >= 1.0:
        raise ValueError("val_size + test_size must be < 1")
    if not arrays:
        raise ValueError("at least one array required")
    check_consistent_length(*arrays)
    n = np.asarray(arrays[0]).shape[0]
    rng = as_generator(seed)
    indices = np.arange(n)
    rest_idx, test_idx = train_test_split(
        indices, test_size=test_size, stratify=stratify, seed=rng
    )
    strat_rest = None if stratify is None else np.asarray(stratify)[rest_idx]
    rel_val = val_size / (1.0 - test_size)
    train_idx, val_idx = train_test_split(
        rest_idx, test_size=rel_val, stratify=strat_rest, seed=rng
    )
    out: List[np.ndarray] = []
    for arr in arrays:
        arr = np.asarray(arr)
        out.extend([arr[train_idx], arr[val_idx], arr[test_idx]])
    return out


@dataclass(frozen=True)
class KFold:
    """Plain k-fold splitter over shuffled indices."""

    n_splits: int = 10
    shuffle: bool = True
    seed: SeedLike = None

    def split(self, n_samples: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        check_positive_int(self.n_splits, "n_splits", minimum=2)
        if n_samples < self.n_splits:
            raise ValueError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        idx = np.arange(n_samples)
        if self.shuffle:
            idx = as_generator(self.seed).permutation(n_samples)
        folds = np.array_split(idx, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield train, test


@dataclass(frozen=True)
class StratifiedKFold:
    """K-fold preserving class proportions in every fold."""

    n_splits: int = 10
    shuffle: bool = True
    seed: SeedLike = None

    def split(self, y: np.ndarray) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        check_positive_int(self.n_splits, "n_splits", minimum=2)
        y = column_or_1d(y)
        rng = as_generator(self.seed)
        fold_bins: List[List[np.ndarray]] = [[] for _ in range(self.n_splits)]
        for cls in np.unique(y):
            members = np.flatnonzero(y == cls)
            if members.size < self.n_splits and members.size > 0:
                # Still distribute what exists; folds may miss rare classes.
                pass
            if self.shuffle:
                members = rng.permutation(members)
            for i, part in enumerate(np.array_split(members, self.n_splits)):
                fold_bins[i].append(part)
        folds = [np.concatenate(parts) if parts else np.empty(0, dtype=np.int64) for parts in fold_bins]
        for i in range(self.n_splits):
            if folds[i].size == 0:
                raise ValueError("a fold came out empty; reduce n_splits")
            test = np.sort(folds[i])
            train = np.sort(np.concatenate([folds[j] for j in range(self.n_splits) if j != i]))
            yield train, test


# ----------------------------------------------------------------------
# Model-agnostic CV driver
# ----------------------------------------------------------------------
@dataclass
class CVResult:
    """Per-fold scores from :func:`cross_validate`."""

    train_scores: np.ndarray
    test_scores: np.ndarray

    @property
    def mean_train(self) -> float:
        return float(self.train_scores.mean())

    @property
    def mean_test(self) -> float:
        return float(self.test_scores.mean())


def cross_validate(
    estimator,
    X,
    y,
    *,
    n_splits: int = 10,
    stratified: bool = True,
    seed: SeedLike = 0,
    n_jobs: Optional[int] = 1,
) -> CVResult:
    """Fit a fresh clone per fold; record train and test accuracy.

    The paper's Table III reports *training* accuracy under 10-fold CV
    (following the Kaggle reference it normalises against), which is why
    both scores are kept.
    """
    X = np.asarray(X)
    y = column_or_1d(y)
    check_consistent_length(X, y, names=("X", "y"))
    splitter = (
        StratifiedKFold(n_splits=n_splits, seed=seed)
        if stratified
        else KFold(n_splits=n_splits, seed=seed)
    )
    splits = list(splitter.split(y) if stratified else splitter.split(X.shape[0]))

    def run_fold(split: Tuple[np.ndarray, np.ndarray]) -> Tuple[float, float]:
        train, test = split
        with span("eval.fold", train=train.size, test=test.size):
            model = clone(estimator)
            model.fit(X[train], y[train])
            return model.score(X[train], y[train]), model.score(X[test], y[test])

    with span("eval.crossval", folds=len(splits), rows=X.shape[0]):
        scores = parallel_map(run_fold, splits, n_jobs=n_jobs)
    tr, te = zip(*scores)
    return CVResult(np.asarray(tr), np.asarray(te))


# ----------------------------------------------------------------------
# Leave-one-out for the Hamming model
# ----------------------------------------------------------------------
@dataclass
class LOOResult:
    """Predictions and report from matrix-based leave-one-out."""

    y_true: np.ndarray
    y_pred: np.ndarray
    report: dict

    @property
    def accuracy(self) -> float:
        return self.report["accuracy"]


def _loo_validate(packed: np.ndarray, y: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    y = column_or_1d(y)
    packed = np.asarray(packed, dtype=np.uint64)
    if packed.shape[0] != y.shape[0]:
        raise ValueError("packed and y length mismatch")
    if packed.shape[0] < 2:
        raise ValueError("leave-one-out needs at least 2 records")
    return packed, y


def _loo_result(
    neighbors: np.ndarray, y: np.ndarray, positive
) -> LOOResult:
    """Map an ``(n, k)`` non-self neighbour matrix to voted predictions."""
    classes, y_idx = np.unique(y, return_inverse=True)
    if neighbors.shape[1] == 1:
        pred_idx = y_idx[neighbors[:, 0]]
    else:
        counts = vote_counts(y_idx[neighbors], classes.size)
        pred_idx = np.argmax(counts, axis=1)
    y_pred = classes[pred_idx]
    report = classification_report(y, y_pred, positive=positive)
    return LOOResult(y_true=y.copy(), y_pred=y_pred, report=report)


@renamed_kwargs(block_rows="chunk_rows")
def leave_one_out_hamming(
    packed: np.ndarray,
    y: np.ndarray,
    *,
    n_neighbors: int = 1,
    positive=1,
    chunk_rows: int = 128,
    n_jobs: Optional[int] = 1,
) -> LOOResult:
    """§II-C's validation: each record classified by its nearest *other* record.

    Streams through :func:`repro.core.search.loo_topk_hamming`: only
    upper-triangle tiles are computed (each block serves both its row and
    column tile), the diagonal is masked with an int64 sentinel, and no
    ``n x n`` matrix is ever materialised — peak memory is the tile blocks
    in flight plus the ``(n, k)`` running top-k state.  With
    ``n_neighbors > 1`` the k nearest non-self records vote.  Predictions
    are bit-identical to :func:`leave_one_out_hamming_reference` (ties to
    the lowest record index); ``chunk_rows``/``n_jobs`` only change the
    tile geometry and dispatch, never the result.  (``chunk_rows`` was
    spelled ``block_rows`` before PR 4; the old keyword still works but
    emits a ``DeprecationWarning``.)
    """
    packed, y = _loo_validate(packed, y)
    k = min(n_neighbors, packed.shape[0] - 1)
    with span("eval.loo", records=packed.shape[0], k=k):
        _, neighbors = loo_topk_hamming(packed, k, chunk_rows=chunk_rows, n_jobs=n_jobs)
        return _loo_result(neighbors, y, positive)


@renamed_kwargs(block_rows="chunk_rows")
def leave_one_out_hamming_reference(
    packed: np.ndarray,
    y: np.ndarray,
    *,
    n_neighbors: int = 1,
    positive=1,
    chunk_rows: int = 128,
) -> LOOResult:
    """Dense-matrix reference for :func:`leave_one_out_hamming`.

    One full ``n x n`` int64 matrix with the diagonal masked by the int64
    sentinel ``64 * words + 1`` (no float upcast — the previous float64
    masking doubled peak memory just to write ``np.inf``), then a stable
    full sort per row.  Kept as the differential-test oracle.
    """
    packed, y = _loo_validate(packed, y)
    k = min(n_neighbors, packed.shape[0] - 1)
    _, neighbors = loo_topk_hamming_reference(packed, k, chunk_rows=chunk_rows)
    return _loo_result(neighbors, y, positive)
