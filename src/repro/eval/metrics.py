"""Classification metrics (S12) — exactly the columns of Tables IV/V.

The paper reports precision, recall, specificity, F1 and accuracy, with
"positive" = diabetic.  All metrics are computed from one confusion
matrix; zero-denominator cases return 0.0 (and are exercised in tests)
rather than NaN so tables render cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.utils.validation import check_consistent_length, column_or_1d


@dataclass(frozen=True)
class ConfusionMatrix:
    """Binary confusion counts (positive label fixed per construction)."""

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.tn + self.fn

    def as_array(self) -> np.ndarray:
        """2x2 layout [[tn, fp], [fn, tp]] (sklearn convention)."""
        return np.array([[self.tn, self.fp], [self.fn, self.tp]], dtype=np.int64)


def confusion_matrix(y_true, y_pred, *, positive=1) -> ConfusionMatrix:
    """Binary confusion matrix with ``positive`` as the positive label."""
    y_true = column_or_1d(y_true, name="y_true")
    y_pred = column_or_1d(y_pred, name="y_pred")
    check_consistent_length(y_true, y_pred, names=("y_true", "y_pred"))
    if y_true.size == 0:
        raise ValueError("cannot compute a confusion matrix on empty inputs")
    t = y_true == positive
    p = y_pred == positive
    return ConfusionMatrix(
        tp=int(np.sum(t & p)),
        fp=int(np.sum(~t & p)),
        tn=int(np.sum(~t & ~p)),
        fn=int(np.sum(t & ~p)),
    )


def _safe_div(num: float, den: float) -> float:
    return num / den if den > 0 else 0.0


def accuracy(y_true, y_pred) -> float:
    """Fraction of correct predictions."""
    y_true = column_or_1d(y_true, name="y_true")
    y_pred = column_or_1d(y_pred, name="y_pred")
    check_consistent_length(y_true, y_pred, names=("y_true", "y_pred"))
    if y_true.size == 0:
        raise ValueError("cannot compute accuracy on empty inputs")
    return float(np.mean(y_true == y_pred))


def precision(y_true, y_pred, *, positive=1) -> float:
    """TP / (TP + FP) — of predicted positives, how many are real."""
    cm = confusion_matrix(y_true, y_pred, positive=positive)
    return _safe_div(cm.tp, cm.tp + cm.fp)


def recall(y_true, y_pred, *, positive=1) -> float:
    """TP / (TP + FN) — sensitivity; of real positives, how many found."""
    cm = confusion_matrix(y_true, y_pred, positive=positive)
    return _safe_div(cm.tp, cm.tp + cm.fn)


def specificity(y_true, y_pred, *, positive=1) -> float:
    """TN / (TN + FP) — of real negatives, how many correctly cleared."""
    cm = confusion_matrix(y_true, y_pred, positive=positive)
    return _safe_div(cm.tn, cm.tn + cm.fp)


def f1_score(y_true, y_pred, *, positive=1) -> float:
    """Harmonic mean of precision and recall."""
    cm = confusion_matrix(y_true, y_pred, positive=positive)
    return _safe_div(2 * cm.tp, 2 * cm.tp + cm.fp + cm.fn)


def balanced_accuracy(y_true, y_pred, *, positive=1) -> float:
    """Mean of sensitivity and specificity (robust to class imbalance)."""
    return 0.5 * (
        recall(y_true, y_pred, positive=positive)
        + specificity(y_true, y_pred, positive=positive)
    )


def classification_report(y_true, y_pred, *, positive=1) -> Dict[str, float]:
    """All Table IV/V columns in one pass.

    Returns a dict with keys ``precision``, ``recall``, ``specificity``,
    ``f1``, ``accuracy`` (accuracy as a fraction in [0, 1]).
    """
    cm = confusion_matrix(y_true, y_pred, positive=positive)
    prec = _safe_div(cm.tp, cm.tp + cm.fp)
    rec = _safe_div(cm.tp, cm.tp + cm.fn)
    spec = _safe_div(cm.tn, cm.tn + cm.fp)
    f1 = _safe_div(2 * cm.tp, 2 * cm.tp + cm.fp + cm.fn)
    acc = _safe_div(cm.tp + cm.tn, cm.total)
    return {
        "precision": prec,
        "recall": rec,
        "specificity": spec,
        "f1": f1,
        "accuracy": acc,
    }


def roc_auc(y_true, scores, *, positive=1) -> float:
    """Area under the ROC curve via the rank statistic (ties averaged).

    Not in the paper's tables, but standard for medical screening; exposed
    for the extended examples and ablations.
    """
    y_true = column_or_1d(y_true, name="y_true")
    scores = np.asarray(scores, dtype=np.float64)
    check_consistent_length(y_true, scores, names=("y_true", "scores"))
    pos = y_true == positive
    n_pos = int(pos.sum())
    n_neg = int((~pos).sum())
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc requires both classes present")
    order = np.argsort(scores, kind="stable")
    ranks = np.empty_like(order, dtype=np.float64)
    ranks[order] = np.arange(1, scores.size + 1)
    # average ranks over tied scores
    sorted_scores = scores[order]
    i = 0
    while i < scores.size:
        j = i
        while j + 1 < scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = 0.5 * (i + 1 + j + 1)
        i = j + 1
    rank_sum = ranks[pos].sum()
    u = rank_sum - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def brier_score(y_true, proba_pos, *, positive=1) -> float:
    """Mean squared error of the positive-class probability.

    The natural quality measure for the §III-B *score* use case: a risk
    score shown to clinicians should be calibrated, not just well-ranked.
    """
    y_true = column_or_1d(y_true, name="y_true")
    proba_pos = np.asarray(proba_pos, dtype=np.float64)
    check_consistent_length(y_true, proba_pos, names=("y_true", "proba_pos"))
    if y_true.size == 0:
        raise ValueError("cannot compute a Brier score on empty inputs")
    if np.any((proba_pos < 0) | (proba_pos > 1)):
        raise ValueError("probabilities must lie in [0, 1]")
    target = (y_true == positive).astype(np.float64)
    return float(np.mean((proba_pos - target) ** 2))


def calibration_bins(
    y_true,
    proba_pos,
    *,
    n_bins: int = 10,
    positive=1,
) -> Dict[str, np.ndarray]:
    """Reliability-curve data: per-bin mean prediction vs. observed rate.

    Returns ``{"bin_centers", "mean_predicted", "observed_rate", "counts"}``
    with NaN for empty bins.  Used to eyeball/assert calibration of the
    risk scores in the clinical examples.
    """
    y_true = column_or_1d(y_true, name="y_true")
    proba_pos = np.asarray(proba_pos, dtype=np.float64)
    check_consistent_length(y_true, proba_pos, names=("y_true", "proba_pos"))
    if n_bins < 2:
        raise ValueError(f"n_bins must be >= 2, got {n_bins}")
    if np.any((proba_pos < 0) | (proba_pos > 1)):
        raise ValueError("probabilities must lie in [0, 1]")
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    idx = np.clip(np.digitize(proba_pos, edges[1:-1]), 0, n_bins - 1)
    target = (y_true == positive).astype(np.float64)
    counts = np.bincount(idx, minlength=n_bins).astype(np.float64)
    with np.errstate(invalid="ignore"):
        mean_pred = np.bincount(idx, weights=proba_pos, minlength=n_bins) / counts
        observed = np.bincount(idx, weights=target, minlength=n_bins) / counts
    return {
        "bin_centers": (edges[:-1] + edges[1:]) / 2.0,
        "mean_predicted": mean_pred,
        "observed_rate": observed,
        "counts": counts.astype(np.int64),
    }
