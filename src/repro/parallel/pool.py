"""Ordered parallel map with pluggable thread/process backends.

Design notes
------------
* **Ordering** — results are returned in input order regardless of
  completion order, so callers (forest fitting, CV folds) stay
  deterministic.
* **Serial fast path** — with one worker (or tiny inputs) we run inline;
  no pool is spun up, which keeps single-core machines and tests fast and
  makes tracebacks direct.
* **Backend choice** — ``threads`` (default) suits NumPy-bound work that
  releases the GIL; ``processes`` suits pure-Python CPU work.  Both can be
  forced globally through ``REPRO_BACKEND`` and ``REPRO_WORKERS``.
* **Error propagation** — the first worker exception is re-raised in the
  caller with its original type; remaining futures are cancelled.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Sequence, TypeVar

from repro import obs

T = TypeVar("T")
R = TypeVar("R")

_VALID_BACKENDS = ("threads", "processes", "serial")


@dataclass(frozen=True)
class WorkerConfig:
    """Resolved parallel-execution configuration."""

    workers: int
    backend: str

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.backend not in _VALID_BACKENDS:
            raise ValueError(
                f"backend must be one of {_VALID_BACKENDS}, got {self.backend!r}"
            )


def effective_workers(n_jobs: Optional[int] = None) -> int:
    """Resolve a worker count.

    ``None``/0 → the ``REPRO_WORKERS`` env var if set, else cpu count;
    negative → ``max(1, cpu + 1 + n_jobs)`` (sklearn-style ``-1`` = all).
    """
    if n_jobs is None or n_jobs == 0:
        env = os.environ.get("REPRO_WORKERS")
        if env is not None:
            try:
                return max(1, int(env))
            except ValueError as exc:
                raise ValueError(f"REPRO_WORKERS must be an int, got {env!r}") from exc
        return max(1, os.cpu_count() or 1)
    if n_jobs < 0:
        return max(1, (os.cpu_count() or 1) + 1 + n_jobs)
    return n_jobs


def resolve_config(n_jobs: Optional[int] = None, backend: Optional[str] = None) -> WorkerConfig:
    """Combine explicit arguments with environment defaults.

    This is the *single* resolution point for parallel execution: every
    dispatcher (``parallel_map``, and through it ``pairwise_hamming``,
    ``chunked_pairwise`` and ``RecordEncoder.transform``) funnels its
    ``n_jobs``/``backend`` request through here, so an explicit argument, a
    ``None`` (= consult ``REPRO_WORKERS`` / ``REPRO_BACKEND``) and the
    documented env overrides all round-trip identically.  Invalid env
    values raise immediately (``ValueError``) rather than being silently
    ignored.
    """
    resolved_backend = backend or os.environ.get("REPRO_BACKEND", "threads")
    return WorkerConfig(workers=effective_workers(n_jobs), backend=resolved_backend)


class _ObsShuttle:
    """Picklable wrapper shipping worker spans/metrics back with results.

    Used by :func:`parallel_map` for the ``processes`` backend when
    :mod:`repro.obs` tracing is armed: the worker records spans as usual,
    and each item's result is returned as ``(value, span_dicts,
    metric_deltas)`` for the parent to unwrap, re-parent under the
    dispatch-time active span and fold into its own registry.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[..., Any]) -> None:
        self.fn = fn

    def __call__(self, item: Any) -> Any:
        obs.worker_begin()
        value = self.fn(item)
        span_dicts, deltas = obs.worker_collect()
        return value, span_dicts, deltas


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    n_jobs: Optional[int] = None,
    backend: Optional[str] = None,
    chunk_threshold: int = 2,
) -> List[R]:
    """Apply ``fn`` to every item, in order, possibly in parallel.

    Parameters
    ----------
    fn:
        Callable applied to each item.  Must be picklable for the
        ``processes`` backend.
    items:
        Input sequence (materialised once).
    n_jobs:
        Worker count request; see :func:`effective_workers`.
    backend:
        ``"threads"``, ``"processes"`` or ``"serial"``; defaults to the
        ``REPRO_BACKEND`` env var, else threads.
    chunk_threshold:
        Inputs with fewer items than this run serially — a pool would only
        add latency.

    Returns
    -------
    list
        ``[fn(x) for x in items]``, in input order.
    """
    seq: Sequence[T] = list(items)
    cfg = resolve_config(n_jobs, backend)
    if cfg.backend == "serial" or cfg.workers == 1 or len(seq) < chunk_threshold:
        # Serial path needs no propagation: spans opened inside ``fn``
        # nest naturally under the caller's active span.
        return [fn(x) for x in seq]

    # Span propagation (repro.obs): capture the dispatch-time active span
    # so worker-side spans stay attached to the caller's trace tree.
    # Costs a single enabled() check when tracing is disarmed.
    tracing = obs.enabled()
    obs_parent = obs.current_span_id() if tracing else None
    shuttle = cfg.backend == "processes" and tracing

    executor_cls = ThreadPoolExecutor if cfg.backend == "threads" else ProcessPoolExecutor
    workers = min(cfg.workers, len(seq))
    with executor_cls(max_workers=workers) as pool:
        if shuttle:
            wrapped = _ObsShuttle(fn)
            futures = [pool.submit(wrapped, x) for x in seq]
        elif tracing and cfg.backend == "threads":
            futures = [
                pool.submit(obs.run_with_parent, obs_parent, fn, x) for x in seq
            ]
        else:
            futures = [pool.submit(fn, x) for x in seq]
        results: List[R] = []
        try:
            for fut in futures:
                results.append(fut.result())
        except BaseException:
            for fut in futures:
                fut.cancel()
            raise
    if shuttle:
        values: List[R] = []
        for value, span_dicts, deltas in results:  # type: ignore[misc]
            obs.ingest_spans(
                [obs.SpanRecord.from_dict(d) for d in span_dicts],
                parent_id=obs_parent,
            )
            obs.REGISTRY.merge(deltas)
            values.append(value)
        return values
    return results
