"""Block decomposition for quadratic kernels.

The leave-one-out Hamming evaluation needs an ``n x n`` distance matrix.
For the paper's datasets (n <= 768) that is trivial, but the library is
meant to scale: ``chunked_pairwise`` evaluates any pairwise kernel in row
blocks so peak temporary memory stays bounded at ``block x n`` words, and
blocks can be dispatched through :func:`repro.parallel.pool.parallel_map`.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from repro.parallel.pool import parallel_map


def _kernel_span(
    kernel: Callable[[np.ndarray, np.ndarray], np.ndarray],
    A: np.ndarray,
    B: np.ndarray,
    span: Tuple[int, int],
) -> np.ndarray:
    # Top-level dispatch target: picklable (given a picklable kernel) so the
    # REPRO_BACKEND=processes override round-trips through parallel_map.
    return kernel(A[span[0]:span[1]], B)


def chunk_spans(n: int, chunk: int) -> List[Tuple[int, int]]:
    """Split ``range(n)`` into contiguous ``[start, stop)`` spans.

    >>> chunk_spans(10, 4)
    [(0, 4), (4, 8), (8, 10)]
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if chunk < 1:
        raise ValueError(f"chunk must be >= 1, got {chunk}")
    return [(i, min(i + chunk, n)) for i in range(0, n, chunk)]


def tile_spans(
    n_rows: int, n_cols: int, tile_rows: int, tile_cols: int
) -> List[Tuple[Tuple[int, int], Tuple[int, int]]]:
    """Row-major grid of ``(row_span, col_span)`` tiles over an n×m matrix.

    >>> tile_spans(3, 5, 2, 4)
    [((0, 2), (0, 4)), ((0, 2), (4, 5)), ((2, 3), (0, 4)), ((2, 3), (4, 5))]
    """
    return [
        (rs, cs)
        for rs in chunk_spans(n_rows, tile_rows)
        for cs in chunk_spans(n_cols, tile_cols)
    ]


def iter_chunks(array: np.ndarray, chunk: int) -> Iterator[np.ndarray]:
    """Yield contiguous row-block *views* (no copies) of ``array``."""
    for start, stop in chunk_spans(array.shape[0], chunk):
        yield array[start:stop]


def chunked_pairwise(
    kernel: Callable[[np.ndarray, np.ndarray], np.ndarray],
    A: np.ndarray,
    B: Optional[np.ndarray] = None,
    *,
    chunk: int = 256,
    n_jobs: Optional[int] = 1,
    out_dtype=None,
) -> np.ndarray:
    """Evaluate ``kernel(A_block, B)`` block-by-block into a full matrix.

    Parameters
    ----------
    kernel:
        Function mapping ``(m, d), (n, d) -> (m, n)``; must be pure
        (blocks may run concurrently under the threads backend).
    A, B:
        Row-major operand matrices; ``B=None`` means ``B = A``.
    chunk:
        Rows of ``A`` per block.
    n_jobs:
        Workers for block dispatch (default 1 = serial; the kernels are
        already vectorised so parallelism pays off only for large n).
    out_dtype:
        Dtype of the output matrix; inferred from the first block if None.
        With zero rows there is no block to infer from, so the empty
        result defaults to ``int64`` — the dtype of the integer Hamming
        kernels this decomposition fronts (float kernels should pass
        ``out_dtype`` explicitly when the zero-row dtype matters).
    """
    if B is None:
        B = A
    if A.ndim != 2 or B.ndim != 2:
        raise ValueError("A and B must be 2-d")
    if A.shape[1] != B.shape[1]:
        raise ValueError(f"column mismatch: A has {A.shape[1]}, B has {B.shape[1]}")

    spans = chunk_spans(A.shape[0], chunk)
    if not spans:
        return np.zeros((0, B.shape[0]), dtype=out_dtype or np.int64)

    blocks = parallel_map(partial(_kernel_span, kernel, A, B), spans, n_jobs=n_jobs)
    first = blocks[0]
    if first.shape != (spans[0][1] - spans[0][0], B.shape[0]):
        raise ValueError(
            f"kernel returned shape {first.shape}, expected "
            f"({spans[0][1] - spans[0][0]}, {B.shape[0]})"
        )
    out = np.empty((A.shape[0], B.shape[0]), dtype=out_dtype or first.dtype)
    for (start, stop), block in zip(spans, blocks):
        out[start:stop] = block
    return out
