"""Parallel-execution substrate (S14).

Fitting a random forest, sweeping a CV grid and computing large pairwise
Hamming matrices are embarrassingly parallel.  This package provides:

* :func:`repro.parallel.pool.parallel_map` — ordered map over a picklable
  function with a thread/process backend chosen per call or via the
  ``REPRO_WORKERS`` / ``REPRO_BACKEND`` environment variables;
* :func:`repro.parallel.chunking.iter_chunks` and
  :func:`repro.parallel.chunking.chunked_pairwise` — block-decomposition
  helpers that bound peak memory of O(n^2) kernels.

NumPy already releases the GIL inside its kernels, so the *thread* backend
is the default: the hot loops here (XOR + popcount, histogram scans) are
NumPy calls on large arrays and scale across threads without pickling.
"""

from repro.parallel.pool import (
    parallel_map,
    effective_workers,
    resolve_config,
    WorkerConfig,
)
from repro.parallel.chunking import iter_chunks, chunk_spans, tile_spans, chunked_pairwise

__all__ = [
    "parallel_map",
    "effective_workers",
    "resolve_config",
    "WorkerConfig",
    "iter_chunks",
    "chunk_spans",
    "tile_spans",
    "chunked_pairwise",
]
