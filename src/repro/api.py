"""Blessed public surface of the repro package (PR 4).

Everything an end user needs to reproduce the paper — encoding, search,
classification, evaluation, data loading, and observability — re-exported
from one flat namespace with unified keyword spellings:

* ``n_jobs``     — worker count for parallel dispatch (``None``/``0`` defers
  to ``REPRO_WORKERS``);
* ``chunk_rows`` — rows per block/tile on the row-chunked axis (formerly a
  mix of ``tile_rows``, ``block_rows``, and ``tile``);
* ``tile_cols``  — candidate columns per tile in the streaming search engine.

The old spellings still work everywhere but emit ``DeprecationWarning``
(see :mod:`repro.utils.deprecation`).  Import from here rather than from
submodules: the lint rule HD007 and ``tests/api/test_facade.py`` pin this
surface, so symbols listed in ``__all__`` are guaranteed to resolve and to
be the same objects as their defining modules'.
"""

from __future__ import annotations

# --- core: hypervectors, encoding, bundling -----------------------------
from repro.core.hypervector import (
    Hypervector,
    n_words,
    pack_bits,
    popcount,
    random_packed,
    unpack_bits,
    xor_packed,
)
from repro.core.encoding import (
    BinaryEncoder,
    CategoricalEncoder,
    EncoderNotFittedError,
    LevelEncoder,
)
from repro.core.bundling import (
    majority_from_counts,
    majority_vote,
    majority_vote_batch,
    majority_vote_counts,
    weighted_majority,
)
from repro.core.records import FeatureSpec, RecordEncoder, infer_feature_specs

# --- core: distance, search, classification -----------------------------
from repro.core.distance import (
    hamming_block,
    hamming_rowwise,
    normalized_pairwise_hamming,
    pairwise_distance,
    pairwise_hamming,
)
from repro.core.search import (
    HDIndex,
    ShardedHDIndex,
    argmin_hamming,
    loo_topk_hamming,
    loo_topk_hamming_reference,
    shard_spans,
    topk_hamming,
    topk_hamming_reference,
    topk_hamming_sharded,
)
from repro.core.classifier import HammingClassifier, PrototypeClassifier
from repro.core.itemmemory import ItemMemory
from repro.core.online import OnlineHDClassifier

# --- ml: the paper's comparison models ----------------------------------
from repro.ml import (
    CatBoostClassifier,
    DecisionTreeClassifier,
    KNeighborsClassifier,
    LGBMClassifier,
    LogisticRegression,
    RandomForestClassifier,
    SGDClassifier,
    SVC,
    SequentialNN,
    XGBClassifier,
    clone,
)

# --- eval: protocols, metrics, experiment entry points ------------------
from repro.eval.metrics import classification_report
from repro.eval.crossval import (
    KFold,
    StratifiedKFold,
    cross_validate,
    leave_one_out_hamming,
    leave_one_out_hamming_reference,
    train_test_split,
    train_val_test_split,
)
from repro.eval.experiments import (
    ExperimentConfig,
    default_datasets,
    encode_dataset,
    run_dimension_ablation,
    run_encoding_ablation,
    run_runtime_study,
    run_table2,
    run_table3,
    run_table45,
)

# --- data: the paper's three datasets -----------------------------------
from repro.data import (
    Dataset,
    generate_binarized_images,
    generate_pima,
    generate_sylhet,
    load_pima_m,
    load_pima_r,
    load_sylhet,
    pima_feature_specs,
    sylhet_feature_specs,
)

# --- pipelines, persistence, serving ------------------------------------
from repro.ml.pipeline import HDCFeaturePipeline, ScaledClassifier
from repro.persist import (
    artifact_extras,
    artifact_info,
    artifact_sha,
    load_artifact,
    save_artifact,
    verify_artifact,
)
from repro.serve import (
    InferenceService,
    ModelServer,
    PredictFailedError,
    ReloadError,
    ServeConfig,
    ServePool,
    resolve_serve_config,
)

# --- lifecycle: hot-swap, shadow/A-B routing, drift ----------------------
from repro.lifecycle import (
    ArtifactWatcher,
    DriftMonitor,
    FollowUpTrainer,
    ModelHandle,
    ModelLifecycle,
    ShadowRunner,
    centroid_from_counts,
    training_centroid,
)

# --- scenarios: declarative workloads + load harness ---------------------
from repro.scenarios import (
    LoadReport,
    ScenarioError,
    ScenarioSpec,
    apply_preset,
    find_saturation,
    load_bench,
    load_scenario,
    run_load,
    run_rollout,
    run_scenario,
    sweep_workers,
)

# --- parallel + observability + kernels ---------------------------------
from repro.parallel import parallel_map
from repro import obs
from repro import kernels
from repro.kernels import active_backend, available_backends

__all__ = [
    # hypervectors / encoding / bundling
    "Hypervector",
    "n_words",
    "pack_bits",
    "popcount",
    "random_packed",
    "unpack_bits",
    "xor_packed",
    "BinaryEncoder",
    "CategoricalEncoder",
    "EncoderNotFittedError",
    "LevelEncoder",
    "majority_from_counts",
    "majority_vote",
    "majority_vote_batch",
    "majority_vote_counts",
    "weighted_majority",
    "FeatureSpec",
    "RecordEncoder",
    "infer_feature_specs",
    # distance / search / classification
    "hamming_block",
    "hamming_rowwise",
    "normalized_pairwise_hamming",
    "pairwise_distance",
    "pairwise_hamming",
    "HDIndex",
    "ShardedHDIndex",
    "argmin_hamming",
    "loo_topk_hamming",
    "loo_topk_hamming_reference",
    "shard_spans",
    "topk_hamming",
    "topk_hamming_reference",
    "topk_hamming_sharded",
    "HammingClassifier",
    "PrototypeClassifier",
    "ItemMemory",
    "OnlineHDClassifier",
    # ml models
    "CatBoostClassifier",
    "DecisionTreeClassifier",
    "KNeighborsClassifier",
    "LGBMClassifier",
    "LogisticRegression",
    "RandomForestClassifier",
    "SGDClassifier",
    "SVC",
    "SequentialNN",
    "XGBClassifier",
    "clone",
    # eval
    "classification_report",
    "KFold",
    "StratifiedKFold",
    "cross_validate",
    "leave_one_out_hamming",
    "leave_one_out_hamming_reference",
    "train_test_split",
    "train_val_test_split",
    "ExperimentConfig",
    "default_datasets",
    "encode_dataset",
    "run_dimension_ablation",
    "run_encoding_ablation",
    "run_runtime_study",
    "run_table2",
    "run_table3",
    "run_table45",
    # data
    "Dataset",
    "generate_binarized_images",
    "generate_pima",
    "generate_sylhet",
    "load_pima_m",
    "load_pima_r",
    "load_sylhet",
    "pima_feature_specs",
    "sylhet_feature_specs",
    # pipelines / persistence / serving
    "HDCFeaturePipeline",
    "ScaledClassifier",
    "artifact_extras",
    "artifact_info",
    "artifact_sha",
    "load_artifact",
    "save_artifact",
    "verify_artifact",
    "InferenceService",
    "ModelServer",
    "PredictFailedError",
    "ReloadError",
    "ServeConfig",
    "ServePool",
    "resolve_serve_config",
    # lifecycle
    "ArtifactWatcher",
    "DriftMonitor",
    "FollowUpTrainer",
    "ModelHandle",
    "ModelLifecycle",
    "ShadowRunner",
    "centroid_from_counts",
    "training_centroid",
    # scenarios / load harness
    "LoadReport",
    "ScenarioError",
    "ScenarioSpec",
    "apply_preset",
    "find_saturation",
    "load_bench",
    "load_scenario",
    "run_load",
    "run_rollout",
    "run_scenario",
    "sweep_workers",
    # parallel + observability + kernels
    "parallel_map",
    "obs",
    "kernels",
    "active_backend",
    "available_backends",
]
