"""Versioned on-disk model artifacts: a manifest plus checksummed payloads.

Layout of an artifact directory::

    artifact/
      manifest.json        # schema version, repro version, kind, state tree,
                           # payload table (file, sha256, dtype, shape)
      payloads/
        a0000.npy          # raw .npy arrays, one per hoisted ndarray
        a0001.npy
        ...

Guarantees:

* **No pickle.**  Payloads are written and read with ``allow_pickle=False``
  and the state tree resolves classes through the explicit registry —
  nothing in an artifact can cause code execution on load.
* **Tamper-evident.**  Every payload's SHA-256 is recorded in the manifest
  and re-verified over the file's raw bytes *before* the array is parsed;
  a single flipped byte fails with :class:`ArtifactIntegrityError` naming
  the offending file.  Dtype and shape are cross-checked after parsing.
* **Versioned.**  ``schema_version`` gates the layout; loaders reject
  artifacts from a future schema with a clear upgrade message instead of
  mis-reading them.  ``repro_version`` stamps the producing build.

Shared-memory loading (PR 9): because payloads are raw ``.npy`` files,
``load_artifact(path, mmap=True)`` maps each one read-only with
``numpy.memmap`` semantics instead of copying it onto the heap.  Every
process that maps the same artifact shares one set of physical pages —
the zero-copy substrate the pre-fork serving pool
(:mod:`repro.serve.pool`) is built on.  Verification and mapping are
decoupled: a pool supervisor calls :func:`verify_artifact` once
(streamed SHA-256 over every payload, no arrays materialised) and the
workers load with ``verify=False``, so N workers cost one hash pass and
zero payload copies.
"""

from __future__ import annotations

import hashlib
import io
import json
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.persist.errors import (
    ArtifactError,
    ArtifactIntegrityError,
    ArtifactSchemaError,
)
from repro.persist.state import decode_state, encode_state

#: Bump when the directory layout or state-tree grammar changes shape.
SCHEMA_VERSION = 1
ARTIFACT_FORMAT = "repro-artifact"
MANIFEST_NAME = "manifest.json"
PAYLOAD_DIR = "payloads"

PathLike = Union[str, Path]


#: Chunk size for streamed payload hashing (64 KiB keeps the working set
#: cache-resident while amortising the syscall cost).
_HASH_CHUNK = 64 * 1024


def _sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _sha256_file_hex(path: Path) -> str:
    """Streamed SHA-256 of a file's raw bytes (never loads it whole)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(_HASH_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def save_artifact(
    obj: Any,
    path: PathLike,
    *,
    meta: Optional[Dict[str, Any]] = None,
    extras: Optional[Dict[str, np.ndarray]] = None,
    overwrite: bool = False,
) -> Path:
    """Persist a registered (fitted) object as an artifact directory.

    Parameters
    ----------
    obj:
        Any object registered in :mod:`repro.persist.registry` — fitted
        :class:`~repro.core.records.RecordEncoder`, the HDC classifiers,
        :class:`~repro.core.search.HDIndex`, the supported ``repro.ml``
        estimators, or a whole
        :class:`~repro.ml.pipeline.HDCFeaturePipeline`.
    path:
        Target directory.  Created if missing; refuses to clobber an
        existing artifact unless ``overwrite=True``.
    meta:
        Optional JSON-able user metadata stored verbatim in the manifest
        (dataset name, git revision, training accuracy, ...).
    extras:
        Optional named side-car arrays stored as first-class payloads
        (checksummed and verified like model state) but *not* part of the
        decoded object — e.g. the training-set centroid
        (``"train_centroid"``) the serving drift monitor compares live
        traffic against.  Read back with :func:`artifact_extras`.  The
        key is additive within schema v1: readers that predate it simply
        never dereference the extra payload refs.
    """
    import repro

    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    payload_root = path / PAYLOAD_DIR
    if manifest_path.exists() and not overwrite:
        raise ArtifactError(
            f"{path} already contains an artifact; pass overwrite=True to replace it"
        )
    tree, payloads = encode_state(obj)
    # Extras ride the payload table under an "x" ref prefix, disjoint
    # from encode_state's "a" refs, so one verification pass covers both.
    extras_index: Dict[str, str] = {}
    for i, name in enumerate(sorted(extras or {})):
        ref = f"x{i:04d}"
        payloads[ref] = np.asarray(extras[name])
        extras_index[name] = ref

    payload_root.mkdir(parents=True, exist_ok=True)
    if overwrite:
        for stale in payload_root.glob("*.npy"):
            stale.unlink()
    payload_table: Dict[str, Dict[str, Any]] = {}
    for ref in sorted(payloads):
        arr = np.ascontiguousarray(payloads[ref])
        buf = io.BytesIO()
        np.save(buf, arr, allow_pickle=False)
        data = buf.getvalue()
        rel = f"{PAYLOAD_DIR}/{ref}.npy"
        (path / rel).write_bytes(data)
        payload_table[ref] = {
            "file": rel,
            "sha256": _sha256_hex(data),
            "dtype": str(arr.dtype),
            "shape": list(arr.shape),
            "bytes": len(data),
        }

    manifest = {
        "format": ARTIFACT_FORMAT,
        "schema_version": SCHEMA_VERSION,
        "repro_version": repro.__version__,
        "created_unix": time.time(),
        "kind": tree["class"],
        "state": tree,
        "payloads": payload_table,
        "extras": extras_index,
        "meta": dict(meta) if meta else {},
    }
    tmp = manifest_path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8")
    tmp.replace(manifest_path)
    return path


def read_manifest(path: PathLike) -> Dict[str, Any]:
    """Parse and structurally validate an artifact manifest."""
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ArtifactError(f"{path} is not an artifact directory (no {MANIFEST_NAME})")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ArtifactSchemaError(f"{manifest_path}: manifest is not valid JSON: {exc}") from exc
    if not isinstance(manifest, dict) or manifest.get("format") != ARTIFACT_FORMAT:
        raise ArtifactSchemaError(
            f"{manifest_path}: not a {ARTIFACT_FORMAT} manifest"
        )
    version = manifest.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ArtifactSchemaError(
            f"{manifest_path}: artifact schema version {version!r} is not "
            f"supported by this build (reads version {SCHEMA_VERSION}); "
            f"re-save the model with a matching repro release"
        )
    for key in ("state", "payloads"):
        if key not in manifest:
            raise ArtifactSchemaError(f"{manifest_path}: manifest lacks {key!r}")
    return manifest


def _verify_payload_file(
    path: Path, entry: Dict[str, Any], ref: str
) -> None:
    """Streamed checksum verification of one payload file (no parsing)."""
    rel = entry.get("file")
    file_path = path / rel
    try:
        digest = _sha256_file_hex(file_path)
    except OSError as exc:
        raise ArtifactIntegrityError(
            f"payload {rel!r} (ref {ref}) is missing or unreadable: {exc}"
        ) from exc
    if digest != entry.get("sha256"):
        raise ArtifactIntegrityError(
            f"payload {rel!r} (ref {ref}) failed checksum verification: "
            f"sha256 {digest} != recorded {entry.get('sha256')}; the artifact "
            f"has been corrupted or tampered with"
        )


def _check_layout(
    arr: np.ndarray, entry: Dict[str, Any], ref: str
) -> np.ndarray:
    rel = entry.get("file")
    if str(arr.dtype) != entry.get("dtype") or list(arr.shape) != list(
        entry.get("shape", [])
    ):
        raise ArtifactIntegrityError(
            f"payload {rel!r} (ref {ref}) layout drifted: got "
            f"{arr.dtype}/{list(arr.shape)}, manifest records "
            f"{entry.get('dtype')}/{entry.get('shape')}"
        )
    return arr


def _read_payload(
    path: Path,
    entry: Dict[str, Any],
    ref: str,
    *,
    mmap: bool = False,
    verify: bool = True,
) -> np.ndarray:
    """Read one payload file, verifying its checksum *before* parsing.

    With ``verify=True`` the raw bytes are hashed and compared against
    the manifest first; only verified bytes reach the ``.npy`` parser
    (with pickle disabled), and the parsed array's dtype/shape must match
    the recorded layout.  With ``mmap=True`` the array is mapped
    read-only (``mmap_mode="r"``) instead of copied onto the heap —
    verification then streams over the file rather than materialising it.
    """
    rel = entry.get("file")
    file_path = path / rel
    if mmap:
        if verify:
            _verify_payload_file(path, entry, ref)
        try:
            arr = np.load(file_path, mmap_mode="r", allow_pickle=False)
        except (OSError, ValueError) as exc:
            raise ArtifactIntegrityError(
                f"payload {rel!r} (ref {ref}) is not a mappable .npy array: {exc}"
            ) from exc
        return _check_layout(arr, entry, ref)
    try:
        data = file_path.read_bytes()
    except OSError as exc:
        raise ArtifactIntegrityError(
            f"payload {rel!r} (ref {ref}) is missing or unreadable: {exc}"
        ) from exc
    if verify:
        digest = _sha256_hex(data)
        if digest != entry.get("sha256"):
            raise ArtifactIntegrityError(
                f"payload {rel!r} (ref {ref}) failed checksum verification: "
                f"sha256 {digest} != recorded {entry.get('sha256')}; the artifact "
                f"has been corrupted or tampered with"
            )
    try:
        arr = np.load(io.BytesIO(data), allow_pickle=False)
    except ValueError as exc:
        raise ArtifactIntegrityError(
            f"payload {rel!r} (ref {ref}) is not a readable .npy array: {exc}"
        ) from exc
    return _check_layout(arr, entry, ref)


def artifact_sha(path: PathLike) -> str:
    """SHA-256 of the manifest file's raw bytes.

    The manifest records every payload's checksum, so this one digest
    transitively commits to the whole artifact (state tree + payload
    bytes).  It is the ``model.artifact_sha`` the ``/v1`` serving API
    reports, letting clients pin responses to an exact model build.
    """
    manifest_path = Path(path) / MANIFEST_NAME
    if not manifest_path.is_file():
        raise ArtifactError(f"{path} is not an artifact directory (no {MANIFEST_NAME})")
    return _sha256_file_hex(manifest_path)


def verify_artifact(path: PathLike) -> Dict[str, Any]:
    """Verify every payload checksum without materialising any array.

    Parses and validates the manifest, then streams a SHA-256 over each
    payload file and compares it against the recorded digest — the whole
    pass holds one hash chunk in memory regardless of artifact size.
    Returns the parsed manifest on success; raises
    :class:`ArtifactIntegrityError` naming the first corrupted payload.

    This is the supervisor half of the shared-verification contract: a
    serving pool verifies once here, then every worker loads with
    ``load_artifact(path, mmap=True, verify=False)``.
    """
    path = Path(path)
    manifest = read_manifest(path)
    table = manifest["payloads"]
    if not isinstance(table, dict):
        raise ArtifactSchemaError(f"{path}: manifest payload table must be an object")
    for ref in sorted(table):
        _verify_payload_file(path, table[ref], ref)
    return manifest


def load_artifact(
    path: PathLike, *, mmap: bool = False, verify: bool = True
) -> Any:
    """Load an artifact directory back into a live object.

    Parameters
    ----------
    path:
        Artifact directory written by :func:`save_artifact`.
    mmap:
        Map payloads read-only (``numpy`` ``mmap_mode="r"``) instead of
        copying them onto the heap.  Arrays restored this way are
        immutable views over the payload files; processes mapping the
        same artifact share one set of physical pages.
    verify:
        Re-check every payload's SHA-256 before parsing (the default).
        Pass ``False`` only when the same artifact was already verified
        in this deployment — e.g. by a pool supervisor calling
        :func:`verify_artifact` before forking workers.

    Schema versions other than :data:`SCHEMA_VERSION` are rejected.
    Returns the decoded object (same class, bit-identical arrays).
    """
    path = Path(path)
    manifest = read_manifest(path)
    payloads: Dict[str, np.ndarray] = {}
    table = manifest["payloads"]
    if not isinstance(table, dict):
        raise ArtifactSchemaError(f"{path}: manifest payload table must be an object")
    for ref in sorted(table):
        payloads[ref] = _read_payload(
            path, table[ref], ref, mmap=mmap, verify=verify
        )
    return decode_state(manifest["state"], payloads)


def artifact_extras(
    path: PathLike, *, mmap: bool = False, verify: bool = True
) -> Dict[str, np.ndarray]:
    """Read an artifact's named side-car arrays (see ``save_artifact``).

    Returns ``{}`` for artifacts saved without extras.  Each array goes
    through the same checksum/layout verification as model payloads;
    ``verify=False`` skips re-hashing when the artifact was already
    verified in this deployment.
    """
    path = Path(path)
    manifest = read_manifest(path)
    index = manifest.get("extras", {})
    if not isinstance(index, dict):
        raise ArtifactSchemaError(f"{path}: manifest extras must be an object")
    table = manifest["payloads"]
    if not isinstance(table, dict):
        raise ArtifactSchemaError(f"{path}: manifest payload table must be an object")
    out: Dict[str, np.ndarray] = {}
    for name in sorted(index):
        ref = index[name]
        entry = table.get(ref)
        if not isinstance(entry, dict):
            raise ArtifactSchemaError(
                f"{path}: extras entry {name!r} references unknown payload {ref!r}"
            )
        out[name] = _read_payload(path, entry, ref, mmap=mmap, verify=verify)
    return out


def artifact_info(path: PathLike) -> Dict[str, Any]:
    """Manifest summary without loading payloads (kind, versions, sizes)."""
    manifest = read_manifest(path)
    table = manifest["payloads"]
    return {
        "kind": manifest.get("kind"),
        "schema_version": manifest.get("schema_version"),
        "repro_version": manifest.get("repro_version"),
        "created_unix": manifest.get("created_unix"),
        "artifact_sha": artifact_sha(path),
        "n_payloads": len(table),
        "payload_bytes": int(sum(int(e.get("bytes", 0)) for e in table.values())),
        "meta": manifest.get("meta", {}),
    }


__all__ = [
    "ARTIFACT_FORMAT",
    "MANIFEST_NAME",
    "PAYLOAD_DIR",
    "SCHEMA_VERSION",
    "artifact_extras",
    "artifact_info",
    "artifact_sha",
    "load_artifact",
    "read_manifest",
    "save_artifact",
    "verify_artifact",
]
