"""Error taxonomy for the artifact store.

Every failure mode a loader can hit maps to its own exception so callers
(and the serving layer's admission control) can distinguish "this is not
an artifact" from "this artifact was tampered with" from "this artifact
is from a future schema".
"""

from __future__ import annotations


class ArtifactError(RuntimeError):
    """Base class for every artifact save/load failure."""


class StateError(ArtifactError):
    """An object's state tree contains a value the codec cannot express
    (unregistered class, non-string dict key, object-dtype array, ...)."""


class ArtifactSchemaError(ArtifactError):
    """Manifest schema version (or manifest shape) this build cannot read."""


class ArtifactIntegrityError(ArtifactError):
    """A payload's bytes do not match the manifest checksum, or its
    dtype/shape drifted from the recorded layout.  The message always
    names the offending file."""
