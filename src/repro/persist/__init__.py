"""repro.persist — versioned, pickle-free model artifact store.

``save_artifact(fitted_model, "artifact/")`` writes a directory of raw
``.npy`` payloads plus a JSON manifest (schema version, repro version,
per-payload SHA-256 checksums); ``load_artifact`` verifies every checksum
before parsing and rebuilds the object through an explicit class registry
— no pickle anywhere on either path.  See DESIGN.md §9.

Supported objects: fitted :class:`~repro.core.records.RecordEncoder`,
:class:`~repro.core.classifier.HammingClassifier` /
:class:`~repro.core.classifier.PrototypeClassifier`,
:class:`~repro.core.search.HDIndex`, the ``repro.ml`` estimators with
array state, and end-to-end
:class:`~repro.ml.pipeline.HDCFeaturePipeline` hybrids.
"""

from repro.persist.artifact import (
    ARTIFACT_FORMAT,
    MANIFEST_NAME,
    PAYLOAD_DIR,
    SCHEMA_VERSION,
    artifact_extras,
    artifact_info,
    artifact_sha,
    load_artifact,
    read_manifest,
    save_artifact,
    verify_artifact,
)
from repro.persist.errors import (
    ArtifactError,
    ArtifactIntegrityError,
    ArtifactSchemaError,
    StateError,
)
from repro.persist.registry import register, registered_names, registry_name
from repro.persist.state import decode_state, encode_state

__all__ = [
    "ARTIFACT_FORMAT",
    "MANIFEST_NAME",
    "PAYLOAD_DIR",
    "SCHEMA_VERSION",
    "ArtifactError",
    "ArtifactIntegrityError",
    "ArtifactSchemaError",
    "StateError",
    "artifact_extras",
    "artifact_info",
    "artifact_sha",
    "decode_state",
    "encode_state",
    "load_artifact",
    "read_manifest",
    "register",
    "registered_names",
    "registry_name",
    "save_artifact",
    "verify_artifact",
]
