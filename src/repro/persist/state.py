"""State codec: object state trees → JSON + packed ``.npy`` payloads.

The artifact format stores a model as a *state tree*: a JSON document in
which every ``numpy`` array has been hoisted out into a named payload
(written as a raw ``.npy`` file and checksummed by the manifest), and
every domain object has been replaced by a ``{"__hd__": "object"}``
marker carrying its registered class name plus the encoded result of its
``get_state()``.

Supported leaf/compound values:

* ``None``, ``bool``, ``int``, ``float``, ``str`` (numpy scalars are
  normalised to their Python equivalents);
* ``numpy.ndarray`` of any non-object dtype → payload reference;
* ``list`` / ``tuple`` (tuples round-trip as tuples);
* ``dict`` with string keys;
* instances of classes registered in :mod:`repro.persist.registry`.

Anything else raises :class:`~repro.persist.errors.StateError` naming
the offending path inside the tree, so a model with unsupported state
fails at *save* time with a pointer to the attribute — never at load
time with a corrupt artifact.

There is deliberately no pickle fallback anywhere in this module: the
class marker resolves through an explicit registry (never a dynamic
import of an attacker-controlled dotted path), and payloads are plain
``.npy`` arrays.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.persist.errors import StateError

#: Marker key identifying codec nodes inside the JSON tree.  User dicts
#: are wrapped in a ``dict`` node, so a state dict that happens to contain
#: this key never collides with the codec's own markers.
MARKER = "__hd__"


def _normalize_scalar(value: Any) -> Any:
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def encode_value(value: Any, path: str, payloads: Dict[str, np.ndarray]) -> Any:
    """Encode one value into the JSON tree, appending arrays to ``payloads``."""
    from repro.persist.registry import lookup_class

    value = _normalize_scalar(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, np.ndarray):
        if value.dtype == object:
            raise StateError(
                f"{path}: object-dtype arrays cannot be persisted (would "
                f"require pickle); convert to a numeric or string-free layout"
            )
        ref = f"a{len(payloads):04d}"
        payloads[ref] = value
        return {MARKER: "ndarray", "ref": ref}
    if isinstance(value, tuple):
        return {
            MARKER: "tuple",
            "items": [
                encode_value(v, f"{path}[{i}]", payloads) for i, v in enumerate(value)
            ],
        }
    if isinstance(value, list):
        return [encode_value(v, f"{path}[{i}]", payloads) for i, v in enumerate(value)]
    if isinstance(value, dict):
        items: Dict[str, Any] = {}
        for key, v in value.items():
            if not isinstance(key, str):
                raise StateError(
                    f"{path}: dict key {key!r} is not a string; JSON state "
                    f"trees require string keys (store key lists explicitly)"
                )
            items[key] = encode_value(v, f"{path}.{key}", payloads)
        return {MARKER: "dict", "items": items}
    entry = lookup_class(type(value))
    if entry is not None:
        return {
            MARKER: "object",
            "class": entry.name,
            "state": encode_value(entry.to_state(value), f"{path}<{entry.name}>", payloads),
        }
    raise StateError(
        f"{path}: cannot persist value of type {type(value).__module__}."
        f"{type(value).__qualname__}; register it in repro.persist.registry "
        f"or store plain arrays/scalars"
    )


def decode_value(node: Any, path: str, payloads: Dict[str, np.ndarray]) -> Any:
    """Inverse of :func:`encode_value` over an already-verified payload map."""
    from repro.persist.registry import lookup_name

    if node is None or isinstance(node, (bool, int, float, str)):
        return node
    if isinstance(node, list):
        return [decode_value(v, f"{path}[{i}]", payloads) for i, v in enumerate(node)]
    if isinstance(node, dict):
        kind = node.get(MARKER)
        if kind == "ndarray":
            ref = node.get("ref")
            if ref not in payloads:
                raise StateError(f"{path}: dangling payload reference {ref!r}")
            return payloads[ref]
        if kind == "tuple":
            return tuple(
                decode_value(v, f"{path}[{i}]", payloads)
                for i, v in enumerate(node["items"])
            )
        if kind == "dict":
            return {
                key: decode_value(v, f"{path}.{key}", payloads)
                for key, v in node["items"].items()
            }
        if kind == "object":
            entry = lookup_name(node.get("class"))
            if entry is None:
                raise StateError(
                    f"{path}: artifact references unknown class "
                    f"{node.get('class')!r}; not in the persistence registry "
                    f"of this build"
                )
            state = decode_value(node["state"], f"{path}<{entry.name}>", payloads)
            return entry.from_state(state)
        raise StateError(f"{path}: unrecognised codec node {kind!r}")
    raise StateError(f"{path}: unrecognised JSON value of type {type(node).__name__}")


def encode_state(obj: Any) -> Tuple[Any, Dict[str, np.ndarray]]:
    """Encode a registered object into ``(json_tree, payloads)``."""
    payloads: Dict[str, np.ndarray] = {}
    tree = encode_value(obj, "$", payloads)
    if not (isinstance(tree, dict) and tree.get(MARKER) == "object"):
        raise StateError(
            f"top-level artifact object of type {type(obj).__name__} is not "
            f"registered in repro.persist.registry"
        )
    return tree, payloads


def decode_state(tree: Any, payloads: Dict[str, np.ndarray]) -> Any:
    """Decode the tree produced by :func:`encode_state`."""
    return decode_value(tree, "$", payloads)


__all__: List[str] = [
    "MARKER",
    "decode_state",
    "decode_value",
    "encode_state",
    "encode_value",
]
