"""Explicit class registry for the artifact codec.

Artifacts name classes by a short registry key (``core.records.
RecordEncoder``); loading resolves the key through this table only —
there is **no** dynamic import of dotted paths from the manifest, so a
hand-edited artifact cannot make the loader import or execute anything.
Unknown keys fail with :class:`~repro.persist.errors.StateError`.

Default protocol: a registered class supplies ``get_state()`` (a codec-
encodable tree) and ``set_state(state)`` (rebuild in place); loading
allocates with ``cls.__new__`` and calls ``set_state``.  Classes that do
not own the protocol (dataclasses, internal layers) register explicit
``to_state`` / ``from_state`` functions instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Type

import numpy as np


@dataclass(frozen=True)
class RegistryEntry:
    name: str
    cls: Type[Any]
    to_state: Callable[[Any], Any]
    from_state: Callable[[Any], Any]


_BY_NAME: Dict[str, RegistryEntry] = {}
_BY_CLASS: Dict[Type[Any], RegistryEntry] = {}


def registry_name(cls: Type[Any]) -> str:
    """Canonical key: module path with the ``repro.`` prefix stripped."""
    module = cls.__module__
    if module.startswith("repro."):
        module = module[len("repro."):]
    return f"{module}.{cls.__qualname__}"


def register(
    cls: Type[Any],
    *,
    to_state: Optional[Callable[[Any], Any]] = None,
    from_state: Optional[Callable[[Any], Any]] = None,
) -> Type[Any]:
    """Register ``cls`` for persistence; idempotent per class."""
    if to_state is None:
        to_state = lambda obj: obj.get_state()  # noqa: E731
    if from_state is None:
        def from_state(state: Any, _cls: Type[Any] = cls) -> Any:
            obj = _cls.__new__(_cls)
            obj.set_state(state)
            return obj

    entry = RegistryEntry(registry_name(cls), cls, to_state, from_state)
    _BY_NAME[entry.name] = entry
    _BY_CLASS[cls] = entry
    return cls


def lookup_class(cls: Type[Any]) -> Optional[RegistryEntry]:
    return _BY_CLASS.get(cls)


def lookup_name(name: Any) -> Optional[RegistryEntry]:
    if not isinstance(name, str):
        return None
    return _BY_NAME.get(name)


def registered_names() -> list:
    return sorted(_BY_NAME)


# ----------------------------------------------------------------------
# Catalogue.  Registration is explicit — a class joins the artifact
# format only when its round-trip is covered by tests/persist.
# ----------------------------------------------------------------------
def _register_catalogue() -> None:
    from repro.core.classifier import HammingClassifier, PrototypeClassifier
    from repro.core.encoding import BinaryEncoder, CategoricalEncoder, LevelEncoder
    from repro.core.online import OnlineHDClassifier
    from repro.core.records import FeatureSpec, RecordEncoder
    from repro.core.search import HDIndex
    from repro.ml.linear import LogisticRegression, SGDClassifier
    from repro.ml.neighbors import KNeighborsClassifier
    from repro.ml.neural import Dense, SequentialNN
    from repro.ml.pipeline import HDCFeaturePipeline, ScaledClassifier
    from repro.ml.preprocessing import MinMaxScaler, StandardScaler
    from repro.ml.svm import SVC

    for cls in (
        LevelEncoder,
        BinaryEncoder,
        CategoricalEncoder,
        RecordEncoder,
        HammingClassifier,
        PrototypeClassifier,
        OnlineHDClassifier,
        HDIndex,
        LogisticRegression,
        SGDClassifier,
        KNeighborsClassifier,
        SequentialNN,
        SVC,
        StandardScaler,
        MinMaxScaler,
        ScaledClassifier,
        HDCFeaturePipeline,
    ):
        register(cls)

    register(
        FeatureSpec,
        to_state=lambda s: {"name": s.name, "kind": s.kind, "levels": s.levels},
        from_state=lambda st: FeatureSpec(**st),
    )

    def dense_to_state(layer: Dense) -> Dict[str, Any]:
        # Inference state only: the Adam moments and backprop scratch are
        # training-time artifacts and are re-zeroed on load.
        return {"W": layer.W, "b": layer.b, "relu": bool(layer.relu)}

    def dense_from_state(state: Dict[str, Any]) -> Dense:
        layer = Dense.__new__(Dense)
        layer.W = np.asarray(state["W"], dtype=np.float64)
        layer.b = np.asarray(state["b"], dtype=np.float64)
        layer.relu = bool(state["relu"])
        layer.mW = np.zeros_like(layer.W)
        layer.vW = np.zeros_like(layer.W)
        layer.mb = np.zeros_like(layer.b)
        layer.vb = np.zeros_like(layer.b)
        return layer

    register(Dense, to_state=dense_to_state, from_state=dense_from_state)


_register_catalogue()

__all__ = [
    "RegistryEntry",
    "lookup_class",
    "lookup_name",
    "register",
    "registered_names",
    "registry_name",
]
