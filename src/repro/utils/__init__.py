"""Shared utilities: RNG management, argument validation, contracts, timing."""

from repro.utils.contracts import (
    ContractViolation,
    check_packed_array,
    check_same_words,
    checks_packed,
    checks_same_dim,
    contracts_enabled,
)
from repro.utils.rng import as_generator, spawn_generators, derive_seed
from repro.utils.validation import (
    check_array,
    check_X_y,
    check_consistent_length,
    check_positive_int,
    check_in_range,
    column_or_1d,
)
from repro.utils.timing import Timer, format_duration

__all__ = [
    "ContractViolation",
    "check_packed_array",
    "check_same_words",
    "checks_packed",
    "checks_same_dim",
    "contracts_enabled",
    "as_generator",
    "spawn_generators",
    "derive_seed",
    "check_array",
    "check_X_y",
    "check_consistent_length",
    "check_positive_int",
    "check_in_range",
    "column_or_1d",
    "Timer",
    "format_duration",
]
