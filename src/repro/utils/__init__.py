"""Shared utilities: RNG management, argument validation, timing."""

from repro.utils.rng import as_generator, spawn_generators, derive_seed
from repro.utils.validation import (
    check_array,
    check_X_y,
    check_consistent_length,
    check_positive_int,
    check_in_range,
    column_or_1d,
)
from repro.utils.timing import Timer, format_duration

__all__ = [
    "as_generator",
    "spawn_generators",
    "derive_seed",
    "check_array",
    "check_X_y",
    "check_consistent_length",
    "check_positive_int",
    "check_in_range",
    "column_or_1d",
    "Timer",
    "format_duration",
]
