"""Light-weight wall-clock timing used by the runtime benchmarks (R1).

The paper's §III-A reports per-epoch NN timings and a >10x slowdown for
boosted models on hypervector input; :class:`Timer` is the measurement
primitive behind ``benchmarks/bench_runtime.py``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass
class Timer:
    """Context-manager stopwatch accumulating repeated measurements.

    Example
    -------
    >>> t = Timer("fit")
    >>> with t:
    ...     _ = sum(range(1000))
    >>> t.count
    1
    >>> t.total >= 0.0
    True
    """

    name: str = "timer"
    samples: List[float] = field(default_factory=list)
    _start: Optional[float] = field(default=None, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._start is None:  # pragma: no cover - defensive
            raise RuntimeError("Timer.__exit__ without __enter__")
        self.samples.append(time.perf_counter() - self._start)
        self._start = None

    @property
    def total(self) -> float:
        return float(sum(self.samples))

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            raise ValueError(f"Timer {self.name!r} has no samples")
        return self.total / self.count

    @property
    def std(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        m = self.mean
        return math.sqrt(sum((s - m) ** 2 for s in self.samples) / (len(self.samples) - 1))

    def time_call(self, fn: Callable, *args, **kwargs):
        """Time one invocation of ``fn`` and return its result."""
        with self:
            return fn(*args, **kwargs)

    def summary(self) -> str:
        if not self.samples:
            return f"{self.name}: no samples"
        return (
            f"{self.name}: mean={format_duration(self.mean)} "
            f"std={format_duration(self.std)} n={self.count}"
        )


def format_duration(seconds: float) -> str:
    """Human-readable duration with an appropriate unit."""
    if seconds < 0:
        raise ValueError("duration must be non-negative")
    if seconds < 1e-6:
        return f"{seconds * 1e9:.1f}ns"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 60.0:
        return f"{seconds:.2f}s"
    minutes, rem = divmod(seconds, 60.0)
    return f"{int(minutes)}m{rem:04.1f}s"
