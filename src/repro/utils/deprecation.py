"""Keyword-argument deprecation shims for the unified public API.

PR 4 unifies the parallelism/chunking knobs to one spelling across the
library (``n_jobs`` / ``chunk_rows`` / ``tile_cols``).  The old
spellings (``tile_rows``, ``tile``, ``block_rows``) keep working for one
release through :func:`renamed_kwargs`: a decorator that rewrites the
deprecated keyword to its new name, emitting exactly one
``DeprecationWarning`` per deprecated keyword per call.

The wrapper must sit *outermost* (above runtime-contract decorators such
as ``@checks_same_dim``), because those bind the wrapped function's real
signature and would reject the legacy spelling before it is renamed.
``functools.wraps`` preserves ``__wrapped__``, so ``inspect.signature``
— and therefore ``BaseEstimator.get_params`` / ``clone`` — see the new
parameter names.
"""

from __future__ import annotations

import functools
import warnings
from typing import Any, Callable, TypeVar

F = TypeVar("F", bound=Callable[..., Any])


def renamed_kwargs(**renames: str) -> Callable[[F], F]:
    """Decorator factory mapping deprecated keyword names to new ones.

    ``renamed_kwargs(tile_rows="chunk_rows")`` makes ``fn(tile_rows=8)``
    behave exactly like ``fn(chunk_rows=8)`` while emitting a
    ``DeprecationWarning``.  Passing both spellings raises ``TypeError``
    (mirroring Python's duplicate-keyword error).
    """

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            for old, new in renames.items():
                if old in kwargs:
                    if new in kwargs:
                        raise TypeError(
                            f"{fn.__qualname__}() got both deprecated keyword "
                            f"{old!r} and its replacement {new!r}"
                        )
                    warnings.warn(
                        f"{fn.__qualname__}(): keyword {old!r} is deprecated; "
                        f"use {new!r} instead",
                        DeprecationWarning,
                        stacklevel=2,
                    )
                    kwargs[new] = kwargs.pop(old)
            return fn(*args, **kwargs)

        wrapper.__deprecated_kwargs__ = dict(renames)  # type: ignore[attr-defined]
        return wrapper  # type: ignore[return-value]

    return decorate
