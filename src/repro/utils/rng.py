"""Deterministic random-number-generator plumbing.

Every stochastic component in this library (encoders, bootstrap sampling,
weight initialisation, data synthesis, cross-validation shuffles) accepts a
``seed`` argument and converts it to a :class:`numpy.random.Generator`
through :func:`as_generator`.  Experiments are therefore reproducible
bit-for-bit from a single integer, and parallel workers obtain
statistically independent streams via :func:`spawn_generators`, which uses
NumPy's ``SeedSequence.spawn`` mechanism rather than ad-hoc seed
arithmetic.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int``, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged, so callers can thread a
        single stream through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, int, SeedSequence or Generator, got {type(seed).__name__}"
    )


def spawn_generators(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Create ``n`` statistically independent generators from one seed.

    Used to hand each parallel worker (forest trees, CV folds, experiment
    repeats) its own stream.  Independence comes from
    ``SeedSequence.spawn`` so results do not depend on scheduling order.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive a SeedSequence from the generator's own stream.
        seq = np.random.SeedSequence(seed.integers(0, 2**63 - 1, size=4).tolist())
    elif isinstance(seed, np.random.SeedSequence):
        seq = seed
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def derive_seed(seed: SeedLike, *tokens: Union[int, str]) -> int:
    """Derive a stable 63-bit integer sub-seed from ``seed`` and tokens.

    Tokens namespace the derivation (e.g. ``derive_seed(s, "encoder", col)``)
    so two components fed the same top-level seed do not share streams.
    The mapping is deterministic: identical inputs yield identical outputs
    across processes and platforms.
    """
    entropy: list[int] = []
    if isinstance(seed, np.random.Generator):
        raise TypeError("derive_seed requires a reproducible seed, not a Generator")
    if isinstance(seed, np.random.SeedSequence):
        entropy.extend(int(x) for x in np.atleast_1d(seed.entropy))
    elif seed is not None:
        entropy.append(int(seed))
    for tok in tokens:
        if isinstance(tok, str):
            # Stable string hash (Python's hash() is salted per-process).
            h = 2166136261
            for ch in tok.encode("utf-8"):
                h = ((h ^ ch) * 16777619) & 0xFFFFFFFF
            entropy.append(h)
        else:
            entropy.append(int(tok) & 0xFFFFFFFFFFFFFFFF)
    seq = np.random.SeedSequence(entropy)
    return int(seq.generate_state(1, dtype=np.uint64)[0] >> 1)


def check_random_state_consistency(gens: Sequence[np.random.Generator]) -> None:
    """Sanity check used in tests: assert generators are distinct objects."""
    ids = {id(g) for g in gens}
    if len(ids) != len(gens):
        raise ValueError("spawned generators must be distinct objects")
