"""Input validation helpers shared by every estimator and encoder.

These mirror (a small subset of) scikit-learn's ``check_array``/``check_X_y``
contract so the from-scratch estimators in :mod:`repro.ml` fail loudly and
uniformly on malformed input instead of producing NaN-laden results deep
inside a NumPy kernel.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def check_array(
    X,
    *,
    ndim: int = 2,
    dtype=np.float64,
    allow_nan: bool = False,
    min_samples: int = 1,
    name: str = "X",
) -> np.ndarray:
    """Coerce ``X`` to a contiguous ndarray and validate its shape/content.

    Parameters
    ----------
    X : array-like
        Input data.
    ndim : int
        Required dimensionality (1 or 2).
    dtype : numpy dtype or None
        Target dtype; ``None`` keeps the input dtype.
    allow_nan : bool
        If False (default), reject NaN/inf values.
    min_samples : int
        Minimum number of rows (axis 0).
    name : str
        Name used in error messages.
    """
    arr = np.asarray(X) if dtype is None else np.asarray(X, dtype=dtype)
    if arr.ndim != ndim:
        if ndim == 2 and arr.ndim == 1:
            raise ValueError(
                f"{name} must be 2-dimensional; got 1-d array of shape {arr.shape}. "
                f"Reshape with X.reshape(-1, 1) for a single feature."
            )
        raise ValueError(f"{name} must be {ndim}-dimensional, got ndim={arr.ndim}")
    if arr.shape[0] < min_samples:
        raise ValueError(
            f"{name} needs at least {min_samples} sample(s), got {arr.shape[0]}"
        )
    if ndim == 2 and arr.shape[1] == 0:
        raise ValueError(f"{name} has 0 features")
    if not allow_nan and np.issubdtype(arr.dtype, np.floating):
        if not np.all(np.isfinite(arr)):
            raise ValueError(
                f"{name} contains NaN or infinity; clean or impute the data first "
                f"(see repro.data.impute)"
            )
    return np.ascontiguousarray(arr)


def column_or_1d(y, *, name: str = "y") -> np.ndarray:
    """Flatten a column vector to 1-d; reject anything genuinely 2-d."""
    arr = np.asarray(y)
    if arr.ndim == 2 and arr.shape[1] == 1:
        arr = arr.ravel()
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    return arr


def check_consistent_length(*arrays, names: Optional[Tuple[str, ...]] = None) -> None:
    """Assert all arrays share the same first-axis length."""
    lengths = [np.asarray(a).shape[0] for a in arrays]
    if len(set(lengths)) > 1:
        label = ", ".join(
            f"{n}={l}" for n, l in zip(names or [f"array{i}" for i in range(len(lengths))], lengths)
        )
        raise ValueError(f"Inconsistent sample counts: {label}")


def check_X_y(
    X,
    y,
    *,
    dtype=np.float64,
    allow_nan: bool = False,
    min_samples: int = 1,
) -> Tuple[np.ndarray, np.ndarray]:
    """Joint validation for supervised estimators."""
    X = check_array(X, dtype=dtype, allow_nan=allow_nan, min_samples=min_samples)
    y = column_or_1d(y)
    check_consistent_length(X, y, names=("X", "y"))
    return X, y


def check_positive_int(value, name: str, *, minimum: int = 1) -> int:
    """Validate an integer hyper-parameter."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return int(value)


def check_in_range(value, name: str, low: float, high: float, *, inclusive: str = "both") -> float:
    """Validate a float hyper-parameter against a closed/open interval."""
    v = float(value)
    lo_ok = v >= low if inclusive in ("both", "low") else v > low
    hi_ok = v <= high if inclusive in ("both", "high") else v < high
    if not (lo_ok and hi_ok):
        bracket = {"both": "[]", "low": "[)", "high": "(]", "neither": "()"}[inclusive]
        raise ValueError(
            f"{name} must be in {bracket[0]}{low}, {high}{bracket[1]}, got {value}"
        )
    return v


def check_binary_labels(y: np.ndarray, *, name: str = "y") -> np.ndarray:
    """Validate that labels form a binary {0,1} problem, returning int64 labels."""
    classes = np.unique(y)
    if classes.size > 2:
        raise ValueError(f"{name} has {classes.size} classes; this task is binary")
    return y.astype(np.int64, copy=False)
