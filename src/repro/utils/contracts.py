"""Runtime contracts for packed-hypervector invariants.

The packed representation (:mod:`repro.core.hypervector`) rests on two
informal contracts that no type system enforces:

* packed batches are ``uint64`` arrays whose last axis holds
  ``n_words(dim)`` words, and
* when ``dim % 64 != 0`` the padding bits of the final word are zero
  (otherwise popcounts and Hamming distances silently count garbage).

This module turns those contracts into decorators that public kernels can
wear.  They are **zero-cost by default**: unless contracts are enabled at
import time (``REPRO_CONTRACTS=1`` in the environment) the decorators
return the original function object unchanged — no wrapper frame, no
signature binding, nothing on the hot path.  With contracts enabled every
decorated call validates its packed operands and raises
:class:`ContractViolation` with an actionable message.

Enable them for a test run with::

    REPRO_CONTRACTS=1 PYTHONPATH=src python -m pytest -x -q

Tests that must exercise the checks regardless of the environment pass
``enabled=True`` explicitly::

    guarded = checks_packed("packed", dim_param="dim", enabled=True)(fn)
"""

from __future__ import annotations

import functools
import inspect
import os
from typing import Any, Callable, Optional, TypeVar

import numpy as np

F = TypeVar("F", bound=Callable[..., Any])

_TRUTHY = {"1", "true", "yes", "on"}


def _env_enabled() -> bool:
    return os.environ.get("REPRO_CONTRACTS", "").strip().lower() in _TRUTHY


#: Snapshot of ``REPRO_CONTRACTS`` taken at import time.  Decoration uses
#: this (unless overridden with ``enabled=``), so flipping the variable
#: after :mod:`repro` is imported does not retroactively arm decorators.
CONTRACTS_ENABLED = _env_enabled()


def contracts_enabled() -> bool:
    """True if decorators applied at import time validate their calls."""
    return CONTRACTS_ENABLED


class ContractViolation(ValueError):
    """A packed-hypervector invariant was broken at a contract boundary."""


def check_packed_array(
    arr: Any,
    dim: Optional[int] = None,
    *,
    name: str = "packed",
) -> None:
    """Validate one packed operand; raise :class:`ContractViolation` if bad.

    Checks (in order): ``uint64`` dtype, word count against ``dim`` when
    given, and zeroed padding bits in the final word.  Non-ndarray inputs
    are skipped — the decorated function's own ``np.asarray`` boundary is
    responsible for coercing those, and the contract only polices arrays
    that already claim to be packed.
    """
    if not isinstance(arr, np.ndarray):
        return
    if arr.dtype != np.uint64:
        raise ContractViolation(
            f"{name} must be a packed uint64 array, got dtype {arr.dtype}; "
            f"pack with repro.core.hypervector.pack_bits (never astype a "
            f"dense bit matrix)"
        )
    if arr.ndim == 0:
        raise ContractViolation(f"{name} must have at least 1 dimension")
    if dim is None:
        return
    from repro.core.hypervector import n_words, tail_mask  # lazy: avoid cycle

    words = n_words(dim)
    if arr.shape[-1] != words:
        raise ContractViolation(
            f"{name} last axis has {arr.shape[-1]} words but dim={dim} "
            f"requires n_words({dim}) = {words}; the packed batch and dim "
            f"disagree"
        )
    if dim % 64 != 0 and arr.size:
        stray = np.bitwise_and(arr[..., -1], np.uint64(~int(tail_mask(dim)) & 0xFFFFFFFFFFFFFFFF))
        if np.any(stray):
            raise ContractViolation(
                f"{name} has nonzero padding bits beyond dim={dim} in its "
                f"final word; every kernel must preserve the tail-mask "
                f"invariant (see repro.core.hypervector._apply_tail_mask)"
            )


def check_same_words(a: Any, b: Any, *, a_name: str = "A", b_name: str = "B") -> None:
    """Validate that two packed operands can be compared bitwise."""
    check_packed_array(a, name=a_name)
    check_packed_array(b, name=b_name)
    if isinstance(a, np.ndarray) and isinstance(b, np.ndarray):
        if a.ndim and b.ndim and a.shape[-1] != b.shape[-1]:
            raise ContractViolation(
                f"word-count mismatch: {a_name} has {a.shape[-1]} words, "
                f"{b_name} has {b.shape[-1]}; both sides of a Hamming kernel "
                f"must come from the same dim"
            )


def check_same_dim(a: Any, b: Any, *, a_name: str = "a", b_name: str = "b") -> None:
    """Validate that two ``dim``-carrying objects share a dimensionality."""
    da = getattr(a, "dim", None)
    db = getattr(b, "dim", None)
    if da is not None and db is not None and da != db:
        raise ContractViolation(
            f"dimension mismatch: {a_name}.dim={da}, {b_name}.dim={db}"
        )


def _resolve(enabled: Optional[bool]) -> bool:
    return CONTRACTS_ENABLED if enabled is None else enabled


def checks_packed(
    *param_names: str,
    dim_param: Optional[str] = None,
    enabled: Optional[bool] = None,
) -> Callable[[F], F]:
    """Decorator: validate named parameters as packed uint64 batches.

    ``dim_param`` names the argument carrying the bit dimensionality; when
    present, word counts and tail bits are validated against it.  With
    contracts disabled (the default) the decorator is the identity.
    """
    if not param_names:
        raise ValueError("checks_packed needs at least one parameter name")

    def decorate(fn: F) -> F:
        if not _resolve(enabled):
            return fn
        sig = inspect.signature(fn)
        missing = [p for p in param_names if p not in sig.parameters]
        if dim_param is not None and dim_param not in sig.parameters:
            missing.append(dim_param)
        if missing:
            raise TypeError(
                f"checks_packed({missing}) names parameters absent from "
                f"{fn.__qualname__}{sig}"
            )

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            bound = sig.bind(*args, **kwargs)
            bound.apply_defaults()
            dim = bound.arguments.get(dim_param) if dim_param else None
            dim = dim if isinstance(dim, (int, np.integer)) else None
            for p in param_names:
                check_packed_array(bound.arguments.get(p), dim, name=p)
            return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def checks_same_dim(
    a_param: str,
    b_param: str,
    *,
    enabled: Optional[bool] = None,
) -> Callable[[F], F]:
    """Decorator: validate two packed parameters agree on word count.

    Both operands are also individually checked for ``uint64`` dtype.  A
    ``None`` second operand (the ``B=None`` → ``B = A`` idiom of the
    pairwise kernels) passes trivially.  Identity when disabled.
    """

    def decorate(fn: F) -> F:
        if not _resolve(enabled):
            return fn
        sig = inspect.signature(fn)
        missing = [p for p in (a_param, b_param) if p not in sig.parameters]
        if missing:
            raise TypeError(
                f"checks_same_dim({missing}) names parameters absent from "
                f"{fn.__qualname__}{sig}"
            )

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            bound = sig.bind(*args, **kwargs)
            bound.apply_defaults()
            a = bound.arguments.get(a_param)
            b = bound.arguments.get(b_param)
            if b is not None:
                check_same_words(a, b, a_name=a_param, b_name=b_param)
            else:
                check_packed_array(a, name=a_param)
            return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


__all__ = [
    "CONTRACTS_ENABLED",
    "ContractViolation",
    "check_packed_array",
    "check_same_dim",
    "check_same_words",
    "checks_packed",
    "checks_same_dim",
    "contracts_enabled",
]
