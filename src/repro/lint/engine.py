"""hdlint engine: walk paths, parse, run rules, apply suppressions.

Two passes:

1. **per-file** — every selected plain :class:`~repro.lint.rules.Rule`
   runs over each parsed module, exactly as it always has; the same
   parse also feeds the :class:`~repro.lint.project.ModuleIndex` builder.
2. **project** — the collected :class:`~repro.lint.project.ProjectIndex`
   is handed to every selected
   :class:`~repro.lint.project.ProjectRule` (HD009–HD012), which is what
   lets those rules see across module boundaries.

The per-file pass can fan out over processes (``jobs``); the project
pass always runs in the parent because it needs the whole index.
"""

from __future__ import annotations

import ast
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint import project_rules  # noqa: F401 — registers HD009-HD012
from repro.lint.findings import Finding
from repro.lint.project import (
    ModuleIndex,
    ProjectIndex,
    ProjectRule,
    index_module,
    load_index_cache,
    save_index_cache,
    source_hash_key,
)
from repro.lint.rules import RULES, Rule
from repro.lint.suppressions import Suppressions, parse_suppressions

#: Directory names never descended into when linting a tree.
_SKIP_DIRS = {".git", "__pycache__", ".venv", "build", "dist", ".eggs"}

#: Path fragments excluded from tree scans by default: the deliberately
#: broken lint fixture corpus must not fail `repro-lint src tests`.
DEFAULT_EXCLUDES: Tuple[str, ...] = ("tests/lint/fixtures",)


class LintError(RuntimeError):
    """A file could not be linted (unreadable or syntactically invalid)."""


def _select_rules(select: Optional[Sequence[str]]) -> List[Rule]:
    if select is None:
        return [RULES[code] for code in sorted(RULES)]
    rules = []
    for code in select:
        code = code.strip().upper()
        if code not in RULES:
            raise LintError(
                f"unknown rule {code!r}; available: {', '.join(sorted(RULES))}"
            )
        rules.append(RULES[code])
    return rules


def _parse(source: str, path: str) -> ast.Module:
    try:
        return ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: cannot parse: {exc}") from exc


def _file_pass(
    source: str,
    path: str,
    rules: Sequence[Rule],
    *,
    respect_scope: bool,
    respect_suppressions: bool,
) -> Tuple[List[Finding], ModuleIndex, Suppressions]:
    """Parse once; run the per-file rules and build the module index."""
    tree = _parse(source, path)
    suppressions = parse_suppressions(source, tree)
    findings: List[Finding] = []
    for rule in rules:
        if isinstance(rule, ProjectRule):
            continue
        if respect_scope and not rule.applies_to(path):
            continue
        for finding in rule.check(tree, path):
            if respect_suppressions and suppressions.is_suppressed(
                finding.code, finding.line
            ):
                continue
            findings.append(finding)
    return findings, index_module(tree, path), suppressions


def _project_pass(
    index: ProjectIndex,
    rules: Sequence[Rule],
    suppressions: Dict[str, Suppressions],
    *,
    respect_scope: bool,
    respect_suppressions: bool,
) -> List[Finding]:
    findings: List[Finding] = []
    for rule in rules:
        if not isinstance(rule, ProjectRule):
            continue
        for finding in rule.check_project(index, respect_scope=respect_scope):
            if respect_suppressions:
                supp = suppressions.get(finding.path)
                if supp is not None and supp.is_suppressed(
                    finding.code, finding.line
                ):
                    continue
            findings.append(finding)
    return findings


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    select: Optional[Sequence[str]] = None,
    respect_scope: bool = True,
    respect_suppressions: bool = True,
) -> List[Finding]:
    """Lint one source string; returns sorted findings.

    Runs the per-file rules **and** the project rules over the
    single-module index, so fixtures for HD009–HD011 can be exercised
    exactly like HD001–HD008 (HD012 needs :func:`lint_sources`).
    ``respect_scope=False`` runs every selected rule regardless of its
    path scope; suppression comments can likewise be ignored to test
    that they would otherwise fire.
    """
    return lint_sources(
        {path: source},
        select=select,
        respect_scope=respect_scope,
        respect_suppressions=respect_suppressions,
    )


def lint_sources(
    sources: Dict[str, str],
    *,
    select: Optional[Sequence[str]] = None,
    respect_scope: bool = True,
    respect_suppressions: bool = True,
) -> List[Finding]:
    """Lint a ``{path: source}`` mapping as one project; sorted findings."""
    rules = _select_rules(select)
    findings: List[Finding] = []
    modules: List[ModuleIndex] = []
    suppressions: Dict[str, Suppressions] = {}
    for path, source in sources.items():
        file_findings, mi, supp = _file_pass(
            source,
            path,
            rules,
            respect_scope=respect_scope,
            respect_suppressions=respect_suppressions,
        )
        findings.extend(file_findings)
        modules.append(mi)
        suppressions[path] = supp
    findings.extend(
        _project_pass(
            ProjectIndex(modules),
            rules,
            suppressions,
            respect_scope=respect_scope,
            respect_suppressions=respect_suppressions,
        )
    )
    return sorted(findings)


def lint_file(
    path: Path,
    *,
    select: Optional[Sequence[str]] = None,
    respect_scope: bool = True,
    respect_suppressions: bool = True,
) -> List[Finding]:
    return lint_source(
        _read(Path(path)),
        str(path),
        select=select,
        respect_scope=respect_scope,
        respect_suppressions=respect_suppressions,
    )


def _read(path: Path) -> str:
    try:
        return path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"{path}: cannot read: {exc}") from exc


def _excluded(path: Path, excludes: Sequence[str]) -> bool:
    norm = str(path).replace("\\", "/")
    return any(fragment in norm for fragment in excludes)


def iter_python_files(
    paths: Iterable[Path],
    *,
    excludes: Sequence[str] = DEFAULT_EXCLUDES,
) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated .py file list.

    ``excludes`` are path fragments; matching files under a *directory*
    argument are skipped (explicitly named files always lint).
    """
    seen = {}
    for p in paths:
        p = Path(p)
        if p.is_dir():
            candidates = [
                f for f in sorted(p.rglob("*.py"))
                if not _SKIP_DIRS.intersection(part for part in f.parts)
                and not _excluded(f, excludes)
            ]
        elif p.suffix == ".py":
            candidates = [p]
        elif not p.exists():
            raise LintError(f"{p}: no such file or directory")
        else:
            candidates = []
        for f in candidates:
            seen[str(f)] = f
    return [seen[k] for k in sorted(seen)]


def _scan_worker(
    item: Tuple[str, str, Optional[Tuple[str, ...]], bool]
) -> Tuple[List[Finding], ModuleIndex, Suppressions]:
    """Top-level (picklable) per-file worker for ``jobs > 1``."""
    path, source, select, respect_scope = item
    return _file_pass(
        source,
        path,
        _select_rules(select),
        respect_scope=respect_scope,
        respect_suppressions=True,
    )


def lint_paths(
    paths: Iterable[Path],
    *,
    select: Optional[Sequence[str]] = None,
    respect_scope: bool = True,
    jobs: int = 1,
    excludes: Sequence[str] = DEFAULT_EXCLUDES,
    index_cache: Optional[Path] = None,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; returns sorted findings.

    ``jobs > 1`` fans the per-file pass out over processes; the project
    index is assembled once in the parent and the project rules always
    run there.  ``index_cache`` points at a JSON file reused (and
    refreshed) when its source-hash key matches the scanned tree.
    """
    rules = _select_rules(select)
    files = iter_python_files(paths, excludes=excludes)
    sources = [(str(f), _read(f)) for f in files]

    findings: List[Finding] = []
    modules: List[ModuleIndex] = []
    suppressions: Dict[str, Suppressions] = {}
    if jobs > 1 and len(sources) > 1:
        sel = tuple(r.code for r in rules) if select is not None else None
        items = [(p, s, sel, respect_scope) for p, s in sources]
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            for file_findings, mi, supp in pool.map(
                _scan_worker, items, chunksize=8
            ):
                findings.extend(file_findings)
                modules.append(mi)
                suppressions[mi.path] = supp
    else:
        for path, source in sources:
            file_findings, mi, supp = _file_pass(
                source, path, rules,
                respect_scope=respect_scope, respect_suppressions=True,
            )
            findings.extend(file_findings)
            modules.append(mi)
            suppressions[path] = supp

    index: Optional[ProjectIndex] = None
    if index_cache is not None:
        key = source_hash_key(sources)
        index = load_index_cache(Path(index_cache), key)
        if index is None:
            index = ProjectIndex(modules)
            save_index_cache(Path(index_cache), key, index)
    if index is None:
        index = ProjectIndex(modules)

    findings.extend(
        _project_pass(
            index, rules, suppressions,
            respect_scope=respect_scope, respect_suppressions=True,
        )
    )
    return sorted(findings)


__all__ = [
    "DEFAULT_EXCLUDES",
    "LintError",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_sources",
]
