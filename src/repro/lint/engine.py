"""hdlint engine: walk paths, parse, run rules, apply suppressions."""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.lint.findings import Finding
from repro.lint.rules import RULES, Rule
from repro.lint.suppressions import parse_suppressions

#: Directory names never descended into when linting a tree.
_SKIP_DIRS = {".git", "__pycache__", ".venv", "build", "dist", ".eggs"}


class LintError(RuntimeError):
    """A file could not be linted (unreadable or syntactically invalid)."""


def _select_rules(select: Optional[Sequence[str]]) -> List[Rule]:
    if select is None:
        return [RULES[code] for code in sorted(RULES)]
    rules = []
    for code in select:
        code = code.strip().upper()
        if code not in RULES:
            raise LintError(
                f"unknown rule {code!r}; available: {', '.join(sorted(RULES))}"
            )
        rules.append(RULES[code])
    return rules


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    select: Optional[Sequence[str]] = None,
    respect_scope: bool = True,
    respect_suppressions: bool = True,
) -> List[Finding]:
    """Lint one source string; returns sorted findings.

    ``respect_scope=False`` runs every selected rule regardless of its
    path scope (used by the fixture self-tests); suppression comments can
    likewise be ignored to test that they would otherwise fire.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: cannot parse: {exc}") from exc
    suppressions = parse_suppressions(source)
    findings: List[Finding] = []
    for rule in _select_rules(select):
        if respect_scope and not rule.applies_to(path):
            continue
        for finding in rule.check(tree, path):
            if respect_suppressions and suppressions.is_suppressed(
                finding.code, finding.line
            ):
                continue
            findings.append(finding)
    return sorted(findings)


def lint_file(
    path: Path,
    *,
    select: Optional[Sequence[str]] = None,
    respect_scope: bool = True,
    respect_suppressions: bool = True,
) -> List[Finding]:
    try:
        source = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"{path}: cannot read: {exc}") from exc
    return lint_source(
        source,
        str(path),
        select=select,
        respect_scope=respect_scope,
        respect_suppressions=respect_suppressions,
    )


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted, deduplicated .py file list."""
    seen = {}
    for p in paths:
        p = Path(p)
        if p.is_dir():
            candidates = sorted(
                f for f in p.rglob("*.py")
                if not _SKIP_DIRS.intersection(part for part in f.parts)
            )
        elif p.suffix == ".py":
            candidates = [p]
        elif not p.exists():
            raise LintError(f"{p}: no such file or directory")
        else:
            candidates = []
        for f in candidates:
            seen[str(f)] = f
    return [seen[k] for k in sorted(seen)]


def lint_paths(
    paths: Iterable[Path],
    *,
    select: Optional[Sequence[str]] = None,
    respect_scope: bool = True,
) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; returns sorted findings."""
    findings: List[Finding] = []
    for f in iter_python_files(paths):
        findings.extend(lint_file(f, select=select, respect_scope=respect_scope))
    return sorted(findings)


__all__ = [
    "LintError",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
]
