"""Command-line entry point: ``repro-lint`` / ``python -m repro.lint``.

Exit codes follow the usual linter convention: 0 = clean, 1 = findings,
2 = usage or parse error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.engine import (
    DEFAULT_EXCLUDES,
    LintError,
    iter_python_files,
    lint_paths,
)
from repro.lint.rules import all_rules
from repro.lint.sarif import to_sarif


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Project-specific static analysis for packed-hypervector "
            "invariants (per-file rules HD001-HD008 plus the project-wide "
            "rules HD009-HD012; see DESIGN.md section 7)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help=(
            "files or directories to lint (default: src); most rules are "
            "scoped to repro/ module paths — pass --no-scope to lint "
            "arbitrary trees"
        ),
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text); sarif emits SARIF 2.1.0",
    )
    parser.add_argument(
        "--select", default=None, metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--ignore", default=None, metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--no-scope", action="store_true",
        help="run every rule on every file, ignoring per-rule path scopes",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help=(
            "fan the per-file pass out over N worker processes (the "
            "project index and HD009-HD012 always run in the parent)"
        ),
    )
    parser.add_argument(
        "--exclude", action="append", default=[], metavar="FRAGMENT",
        help=(
            "extra path fragment to skip when expanding directories "
            "(repeatable); the lint fixture corpus "
            f"({', '.join(DEFAULT_EXCLUDES)}) is skipped by default"
        ),
    )
    parser.add_argument(
        "--no-default-excludes", action="store_true",
        help="lint the default-excluded paths (the bad-fixture corpus) too",
    )
    parser.add_argument(
        "--index-cache", default=None, metavar="PATH",
        help=(
            "JSON project-index cache file, reused when its source-hash "
            "key matches the scanned tree (CI shares it between jobs)"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _rule_catalogue() -> str:
    lines = []
    for rule in all_rules():
        lines.append(f"{rule.code} [{rule.name}]")
        lines.append(f"    {rule.description}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    try:
        return _run(argv)
    except BrokenPipeError:
        # Downstream closed the pipe early (e.g. `repro-lint ... | head`);
        # point stdout at devnull so the interpreter's exit flush is quiet.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _run(argv: Optional[Sequence[str]]) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_rule_catalogue())
        return 0
    if args.jobs < 1:
        print("repro-lint: error: --jobs must be >= 1", file=sys.stderr)
        return 2

    select: Optional[List[str]] = None
    if args.select:
        select = [c for c in args.select.split(",") if c.strip()]
    if args.ignore:
        ignored = {c.strip().upper() for c in args.ignore.split(",")}
        select = [
            r.code for r in all_rules()
            if r.code not in ignored and (select is None or r.code in
                                          {c.upper() for c in select})
        ]

    excludes: List[str] = list(args.exclude)
    if not args.no_default_excludes:
        excludes.extend(DEFAULT_EXCLUDES)

    try:
        paths = [Path(p) for p in args.paths]
        n_files = len(iter_python_files(paths, excludes=excludes))
        findings = lint_paths(
            paths,
            select=select,
            respect_scope=not args.no_scope,
            jobs=args.jobs,
            excludes=excludes,
            index_cache=Path(args.index_cache) if args.index_cache else None,
        )
    except LintError as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        payload = {
            "files_checked": n_files,
            "findings": [f.as_dict() for f in findings],
            "summary": {"total": len(findings)},
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.format == "sarif":
        print(json.dumps(to_sarif(findings), indent=2, sort_keys=True))
    else:
        for f in findings:
            print(f.render())
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"repro-lint: {len(findings)} {noun} in {n_files} files")
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
