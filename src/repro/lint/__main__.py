"""``python -m repro.lint`` delegates to the CLI."""

from repro.lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
