"""hdlint rule registry: the HD001–HD008 invariant catalogue.

Each rule is an :class:`ast`-level checker encoding one contract the hot
paths of this repository actually depend on (see DESIGN.md §7 for the
rationale and examples).  Rules are registered in :data:`RULES` and carry
a path ``scope`` — the module-path fragments they police — so, e.g., the
float-upcast rule only fires inside ``repro/core`` where Hamming
arithmetic must stay integral.  The engine can bypass scoping
(``respect_scope=False``) to run any rule over arbitrary snippets, which
is how the fixture corpus in ``tests/lint`` exercises every rule.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Tuple, Type

from repro.lint.findings import Finding

# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------


def dotted_name(node: ast.AST) -> Optional[str]:
    """Resolve ``a.b.c`` attribute chains to a dotted string, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _numpy_tail(dotted: str) -> Optional[str]:
    """``np.random.seed`` → ``random.seed``; None for non-numpy names."""
    for prefix in ("np.", "numpy."):
        if dotted.startswith(prefix):
            return dotted[len(prefix):]
    return None


def iter_functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.FunctionDef, Optional[str]]]:
    """Yield every (a)sync function with its enclosing class name (or None).

    Nested functions are yielded too, attributed to the innermost class.
    """
    def walk(node: ast.AST, cls: Optional[str]) -> Iterator[Tuple[ast.FunctionDef, Optional[str]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                yield from walk(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child, cls  # type: ignore[misc]
                yield from walk(child, cls)
            else:
                yield from walk(child, cls)

    yield from walk(tree, None)


def _references_name(node: ast.AST, target: str) -> bool:
    return any(
        isinstance(n, ast.Name) and n.id == target for n in ast.walk(node)
    )


def _call_func_name(call: ast.Call) -> Optional[str]:
    """Last path component of the called object (``a.b.f(...)`` → ``f``)."""
    name = dotted_name(call.func)
    if name is None:
        return None
    return name.rsplit(".", 1)[-1]


_FLOAT_DTYPE_NAMES = {
    "float", "float16", "float32", "float64", "float128",
    "np.float16", "np.float32", "np.float64", "np.float128",
    "numpy.float16", "numpy.float32", "numpy.float64", "np.floating",
    "numpy.floating", "np.double", "numpy.double",
}

_UINT64_NAMES = {"np.uint64", "numpy.uint64", "uint64"}


def _is_float_dtype_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in {"float16", "float32", "float64", "float", "double"}
    name = dotted_name(node)
    return name is not None and name in _FLOAT_DTYPE_NAMES


def _is_non_uint64_dtype_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value != "uint64"
    name = dotted_name(node)
    if name is None:
        return False
    tail = name.rsplit(".", 1)[-1]
    looks_like_dtype = bool(re.fullmatch(r"(u?int|float|complex)\d*|bool_?|float|int", tail))
    return looks_like_dtype and name not in _UINT64_NAMES


# ----------------------------------------------------------------------
# Rule base + registry
# ----------------------------------------------------------------------


class Rule:
    """One registered invariant check."""

    code: str = ""
    name: str = ""
    description: str = ""
    #: Path fragments (posix) this rule polices; empty tuple = everywhere.
    scope: Tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        if not self.scope:
            return True
        norm = path.replace("\\", "/")
        return any(fragment in norm for fragment in self.scope)

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, node: ast.AST, path: str, message: str) -> Finding:
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
            rule_name=self.name,
        )


RULES: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    rule = cls()
    if rule.code in RULES:
        raise ValueError(f"duplicate rule code {rule.code}")
    RULES[rule.code] = rule
    return cls


def all_rules() -> List[Rule]:
    return [RULES[code] for code in sorted(RULES)]


# ----------------------------------------------------------------------
# HD001 — legacy global-state RNG
# ----------------------------------------------------------------------

_LEGACY_RNG = {
    "seed", "random", "rand", "randn", "randint", "random_integers",
    "random_sample", "ranf", "sample", "choice", "shuffle", "permutation",
    "uniform", "normal", "binomial", "poisson", "beta", "gamma",
    "exponential", "standard_normal", "get_state", "set_state",
    "RandomState",
}


@register
class LegacyRandomRule(Rule):
    """``np.random.*`` module-level state breaks seeded reproducibility."""

    code = "HD001"
    name = "legacy-global-rng"
    description = (
        "Legacy np.random.* global-state calls (seed/rand/RandomState/...) "
        "are banned in src/: every stochastic component must accept a seed "
        "and route it through repro.utils.rng.as_generator so experiments "
        "replay bit-for-bit and parallel workers get independent streams."
    )
    scope = ("src/repro", "repro/")

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Attribute):
                continue
            name = dotted_name(node)
            if name is None:
                continue
            tail = _numpy_tail(name)
            if tail is None or not tail.startswith("random."):
                continue
            member = tail.split(".", 1)[1]
            if member.split(".", 1)[0] in _LEGACY_RNG:
                yield self.finding(
                    node,
                    path,
                    f"legacy global-state RNG `{name}`; accept a seed and use "
                    f"repro.utils.rng.as_generator / np.random.Generator instead",
                )


# ----------------------------------------------------------------------
# HD002 — float upcasts inside integer Hamming/popcount kernels
# ----------------------------------------------------------------------

_INT_KERNEL = re.compile(r"hamming|popcount|topk|argmin|bitcount")
_INT_KERNEL_EXEMPT = re.compile(r"normalized|euclidean|cosine|proba|density|float")


@register
class FloatUpcastRule(Rule):
    """Integer Hamming/popcount paths must never detour through floats."""

    code = "HD002"
    name = "float-in-hamming-path"
    description = (
        "Inside repro.core and repro.kernels, functions on the integer "
        "Hamming/popcount path "
        "(names matching hamming|popcount|topk|argmin|bitcount and not an "
        "explicitly float metric) must not upcast: no astype(float*), no "
        "np.float64()/np.float32() constructors, no np.inf/np.nan "
        "sentinels, no true division. Distances are exact int64; use "
        "integer sentinels (e.g. 64*words+1) and // instead."
    )
    scope = ("repro/core", "repro/kernels")

    def _scan(self, fn: ast.FunctionDef, path: str) -> Iterator[Finding]:
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "astype"
                    and node.args
                    and _is_float_dtype_expr(node.args[0])
                ):
                    yield self.finding(
                        node, path,
                        f"float upcast via astype in integer kernel "
                        f"`{fn.name}`; Hamming distances are exact int64",
                    )
                    continue
                name = dotted_name(node.func)
                if name in ("np.float64", "np.float32", "np.float16",
                            "numpy.float64", "numpy.float32"):
                    yield self.finding(
                        node, path,
                        f"`{name}()` constructor in integer kernel "
                        f"`{fn.name}`; keep the path integral",
                    )
            elif isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name in ("np.inf", "np.nan", "numpy.inf", "numpy.nan",
                            "math.inf", "math.nan"):
                    yield self.finding(
                        node, path,
                        f"float sentinel `{name}` in integer kernel "
                        f"`{fn.name}`; use an int64 sentinel such as "
                        f"64*words+1 (cannot be reached by a true distance)",
                    )
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                yield self.finding(
                    node, path,
                    f"true division in integer kernel `{fn.name}` produces "
                    f"float64; use // or move normalisation to a "
                    f"`normalized_*` wrapper",
                )

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for fn, _cls in iter_functions(tree):
            if _INT_KERNEL.search(fn.name) and not _INT_KERNEL_EXEMPT.search(fn.name):
                yield from self._scan(fn, path)


# ----------------------------------------------------------------------
# HD003 — quadratic-memory smells
# ----------------------------------------------------------------------

_DENSE_MATERIALISERS = {
    "pairwise_hamming", "pairwise_distance", "normalized_pairwise_hamming",
}
_STREAMING_FN = re.compile(r"loo|leave_one_out|topk|argmin")


@register
class QuadraticMemoryRule(Rule):
    """Row-at-a-time Python loops and dense (m, n) materialisation."""

    code = "HD003"
    name = "quadratic-memory-smell"
    description = (
        "In repro.core, repro.eval, and repro.kernels: (a) "
        "np.apply_along_axis hides a "
        "per-row Python loop — use a vectorised scatter (see "
        "repro.core.search.vote_counts); (b) `for i in range(len(X))` / "
        "`range(X.shape[0])` with X[i] in the body iterates records in "
        "Python — batch it; (c) streaming-path functions (loo/topk/argmin) "
        "must not call dense pairwise materialisers. `*_reference` oracles "
        "are exempt from (b) and (c) by design, and (b) skips loops over "
        "results collected from repro.parallel.parallel_map — those "
        "iterate O(n_chunks) dispatched blocks, not O(n) records (the "
        "span-instrumented streaming wrappers collect this way)."
    )
    scope = ("repro/core", "repro/eval", "repro/kernels")

    @staticmethod
    def _parallel_result_names(fn: ast.FunctionDef) -> set:
        """Names bound to ``parallel_map(...)`` results inside ``fn``."""
        names: set = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            dispatched = any(
                isinstance(c, ast.Call) and _call_func_name(c) == "parallel_map"
                for c in ast.walk(node.value)
            )
            if not dispatched:
                continue
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    names.add(tgt.id)
                elif isinstance(tgt, (ast.Tuple, ast.List)):
                    names.update(
                        e.id for e in tgt.elts if isinstance(e, ast.Name)
                    )
        return names

    @staticmethod
    def _row_loop_target(node: ast.For) -> Optional[str]:
        """Name N for loops of the form ``for i in range(len(N))`` or
        ``for i in range(N.shape[0])``; None otherwise."""
        it = node.iter
        if not (isinstance(it, ast.Call) and _call_func_name(it) == "range"
                and len(it.args) == 1):
            return None
        arg = it.args[0]
        if (isinstance(arg, ast.Call) and _call_func_name(arg) == "len"
                and len(arg.args) == 1 and isinstance(arg.args[0], ast.Name)):
            return arg.args[0].id
        if isinstance(arg, ast.Subscript):  # N.shape[0]
            base = dotted_name(arg.value)
            if (base is not None and base.endswith(".shape")
                    and isinstance(arg.slice, ast.Constant)
                    and arg.slice.value == 0):
                head = base[: -len(".shape")]
                if "." not in head:
                    return head
        return None

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        # (a) apply_along_axis anywhere in scope.
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and name.endswith("apply_along_axis"):
                    yield self.finding(
                        node, path,
                        "np.apply_along_axis is a per-row Python loop; use a "
                        "vectorised formulation (flat bincount / gather)",
                    )
        for fn, _cls in iter_functions(tree):
            if fn.name.endswith("_reference"):
                continue
            chunk_results = self._parallel_result_names(fn)
            for node in ast.walk(fn):
                # (b) row-at-a-time loops over an array variable.
                if isinstance(node, ast.For):
                    target = self._row_loop_target(node)
                    if target in chunk_results:
                        continue
                    if target is not None and any(
                        isinstance(sub, ast.Subscript)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == target
                        for stmt in node.body
                        for sub in ast.walk(stmt)
                    ):
                        yield self.finding(
                            node, path,
                            f"Python loop over rows of `{target}`; batch the "
                            f"kernel or stream tiles via repro.parallel",
                        )
                # (c) dense materialisers inside streaming-path functions.
                if (
                    isinstance(node, ast.Call)
                    and _STREAMING_FN.search(fn.name)
                    and _call_func_name(node) in _DENSE_MATERIALISERS
                ):
                    yield self.finding(
                        node, path,
                        f"`{_call_func_name(node)}` materialises the full "
                        f"(m, n) distance matrix inside streaming path "
                        f"`{fn.name}`; use repro.core.search (topk_hamming / "
                        f"loo_topk_hamming) or keep it in a *_reference oracle",
                    )


# ----------------------------------------------------------------------
# HD004 — packed-array hygiene
# ----------------------------------------------------------------------

_PACKED_CONSUMERS = {
    "hamming_rowwise", "hamming_block", "pairwise_hamming",
    "topk_hamming", "argmin_hamming", "loo_topk_hamming",
    "popcount", "xor_packed",
}


@register
class PackedHygieneRule(Rule):
    """Bit-complements must re-mask the tail; packed args stay uint64."""

    code = "HD004"
    name = "packed-array-hygiene"
    description = (
        "In repro.core: (a) a function that complements words "
        "(np.bitwise_not / np.invert / unary ~) must also reach "
        "_apply_tail_mask/tail_mask, otherwise padding bits beyond dim go "
        "to 1 and every later popcount overcounts; (b) arguments flowing "
        "into Hamming/popcount consumers must not be explicit non-uint64 "
        "casts — pack with pack_bits, never astype."
    )
    scope = ("repro/core",)

    _PACKED_HINT = re.compile(r"packed|word")

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for fn, _cls in iter_functions(tree):
            touches_mask = any(
                isinstance(n, (ast.Name, ast.Attribute))
                and (dotted_name(n) or "").rsplit(".", 1)[-1]
                in ("_apply_tail_mask", "tail_mask")
                for n in ast.walk(fn)
            )
            for node in ast.walk(fn):
                is_not_call = isinstance(node, ast.Call) and _call_func_name(
                    node
                ) in ("bitwise_not", "invert")
                # Unary ~ is also idiomatic on boolean masks, so it only
                # counts when the operand is visibly a packed-word value.
                is_invert_op = (
                    isinstance(node, ast.UnaryOp)
                    and isinstance(node.op, ast.Invert)
                    and any(
                        isinstance(n, ast.Name) and self._PACKED_HINT.search(n.id)
                        for n in ast.walk(node.operand)
                    )
                )
                if (is_not_call or is_invert_op) and not touches_mask:
                    yield self.finding(
                        node, path,
                        f"bitwise complement in `{fn.name}` without a "
                        f"reachable _apply_tail_mask/tail_mask; NOT sets the "
                        f"padding bits and breaks the popcount invariant",
                    )
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and _call_func_name(node) in _PACKED_CONSUMERS):
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                bad: Optional[str] = None
                if (isinstance(arg, ast.Call)
                        and isinstance(arg.func, ast.Attribute)
                        and arg.func.attr == "astype"
                        and arg.args
                        and _is_non_uint64_dtype_expr(arg.args[0])):
                    bad = dotted_name(arg.args[0]) or "non-uint64"
                elif isinstance(arg, ast.Call) and _call_func_name(arg) in (
                        "asarray", "array", "ascontiguousarray"):
                    for kw in arg.keywords:
                        if kw.arg == "dtype" and _is_non_uint64_dtype_expr(kw.value):
                            bad = dotted_name(kw.value) or "non-uint64"
                if bad is not None:
                    yield self.finding(
                        arg, path,
                        f"explicit {bad} cast flowing into packed consumer "
                        f"`{_call_func_name(node)}`; packed batches are "
                        f"uint64 words (use pack_bits)",
                    )


# ----------------------------------------------------------------------
# HD005 — mutable defaults and unvalidated public `dim` entry points
# ----------------------------------------------------------------------

_DIM_VALIDATORS = {
    "n_words", "tail_mask", "_apply_tail_mask", "pack_bits", "unpack_bits",
    "check_positive_int", "check_in_range", "check_packed_array",
    "coerce_packed", "checks_packed",
}


@register
class ApiContractRule(Rule):
    """Mutable defaults; public core entry points must validate ``dim``."""

    code = "HD005"
    name = "api-contract"
    description = (
        "(a) Mutable default arguments ([], {}, set(), np.array(...)) are "
        "shared across calls — use None; (b) public module-level functions "
        "in repro.core taking a `dim` parameter must validate it (a raise "
        "guarded on dim, or delegation to a validating helper such as "
        "n_words/pack_bits/check_positive_int) so a bad dim fails loudly "
        "instead of silently mis-masking packed words."
    )
    scope = ()  # (a) everywhere; (b) restricts itself to repro/core below.

    _MUTABLE_CALLS = {"list", "dict", "set", "array", "zeros", "ones", "empty"}

    def _mutable_defaults(self, fn: ast.FunctionDef, path: str) -> Iterator[Finding]:
        for default in list(fn.args.defaults) + [
            d for d in fn.args.kw_defaults if d is not None
        ]:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and _call_func_name(default) in self._MUTABLE_CALLS
            )
            if mutable:
                yield self.finding(
                    default, path,
                    f"mutable default argument in `{fn.name}`; default to "
                    f"None and construct inside the function",
                )

    @staticmethod
    def _validates_dim(fn: ast.FunctionDef) -> bool:
        for node in ast.walk(fn):
            if isinstance(node, ast.If) and _references_name(node.test, "dim"):
                if any(isinstance(n, ast.Raise) for stmt in node.body
                       for n in ast.walk(stmt)):
                    return True
            if isinstance(node, ast.Call):
                callee = _call_func_name(node)
                if callee in _DIM_VALIDATORS and any(
                    isinstance(a, ast.Name) and a.id == "dim"
                    for a in list(node.args)
                    + [kw.value for kw in node.keywords]
                ):
                    return True
        return False

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for fn, _cls in iter_functions(tree):
            yield from self._mutable_defaults(fn, path)
        if "repro/core" not in path.replace("\\", "/"):
            return
        for stmt in tree.body:  # module-level only: the public surface
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name.startswith("_"):
                continue
            params = {a.arg for a in stmt.args.args + stmt.args.kwonlyargs
                      + stmt.args.posonlyargs}
            if "dim" not in params:
                continue
            if not self._validates_dim(stmt):
                yield self.finding(
                    stmt, path,
                    f"public core entry point `{stmt.name}` takes `dim` but "
                    f"never validates it; guard with a raise or delegate to "
                    f"n_words/check_positive_int so dim<1 or a mismatched "
                    f"batch fails loudly",
                )


# ----------------------------------------------------------------------
# HD006 — engine/oracle signature drift
# ----------------------------------------------------------------------


@register
class ReferenceDriftRule(Rule):
    """`foo` and `foo_reference` must agree on their positional contract."""

    code = "HD006"
    name = "reference-signature-drift"
    description = (
        "Engine functions pinned to a `*_reference` oracle (differential "
        "tests call both with the same positional arguments) must keep "
        "positional parameter names, order, and defaults identical; "
        "keyword-only engine knobs (tile geometry, n_jobs) may differ. "
        "Kernel backend modules (repro/kernels/*_backend.py) are held to "
        "the same discipline against the canonical signatures in "
        "repro.kernels.signatures — the registry dispatches every backend "
        "with identical positional arguments."
    )
    scope = ()

    #: canonical kernel name -> positional signature, parsed once per run.
    _kernel_sigs: Optional[Dict[str, List[Tuple[str, Optional[str]]]]] = None

    @staticmethod
    def _positional_sig(fn: ast.FunctionDef) -> List[Tuple[str, Optional[str]]]:
        args = fn.args.posonlyargs + fn.args.args
        defaults: List[Optional[ast.expr]] = [None] * (
            len(args) - len(fn.args.defaults)
        ) + list(fn.args.defaults)
        return [
            (a.arg, ast.unparse(d) if d is not None else None)
            for a, d in zip(args, defaults)
        ]

    @classmethod
    def _kernel_signatures(cls) -> Dict[str, List[Tuple[str, Optional[str]]]]:
        """Parse the canonical kernel contract out of repro.kernels.signatures."""
        if cls._kernel_sigs is None:
            from pathlib import Path

            from repro.kernels import signatures as sigmod

            tree = ast.parse(
                Path(sigmod.__file__).read_text(encoding="utf-8")
            )
            wanted = set(sigmod.KERNEL_NAMES)
            cls._kernel_sigs = {
                stmt.name: cls._positional_sig(stmt)
                for stmt in tree.body
                if isinstance(stmt, ast.FunctionDef) and stmt.name in wanted
            }
        return cls._kernel_sigs

    def _check_backend(
        self, tree: ast.Module, path: str
    ) -> Iterator[Finding]:
        canonical = self._kernel_signatures()
        for stmt in tree.body:  # module-level only: the registry surface
            if not isinstance(stmt, ast.FunctionDef):
                continue
            want = canonical.get(stmt.name)
            if want is None:
                continue
            got = self._positional_sig(stmt)
            if got != want:
                yield self.finding(
                    stmt, path,
                    f"kernel backend `{stmt.name}` positional signature "
                    f"drifted from the repro.kernels.signatures contract "
                    f"({want} vs {got}); the registry dispatches every "
                    f"backend with the same positional args",
                )

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        norm = path.replace("\\", "/")
        if "repro/kernels" in norm and norm.endswith("_backend.py"):
            yield from self._check_backend(tree, path)
        scopes: Dict[Optional[str], Dict[str, ast.FunctionDef]] = {}
        for fn, cls in iter_functions(tree):
            scopes.setdefault(cls, {})[fn.name] = fn
        for cls, functions in scopes.items():
            for name, ref in functions.items():
                if not name.endswith("_reference"):
                    continue
                public = functions.get(name[: -len("_reference")])
                if public is None:
                    continue
                if self._positional_sig(public) != self._positional_sig(ref):
                    where = f"{cls}." if cls else ""
                    yield self.finding(
                        ref, path,
                        f"`{where}{name}` positional signature drifted from "
                        f"`{where}{public.name}` "
                        f"({self._positional_sig(public)} vs "
                        f"{self._positional_sig(ref)}); differential tests "
                        f"call both with the same positional args",
                    )


# ----------------------------------------------------------------------
# HD007 — public facade integrity (repro.api)
# ----------------------------------------------------------------------


@register
class ApiFacadeRule(Rule):
    """``repro.api`` must be a complete, resolvable re-export surface."""

    code = "HD007"
    name = "api-facade-integrity"
    description = (
        "The public facade (repro/api) is a pure re-export module: it must "
        "define __all__ as a literal list of unique string names, every "
        "entry must be bound by a top-level import or definition, every "
        "public top-level import must be listed in __all__ (no silent "
        "surface drift), wildcard imports are banned, and `from repro...` "
        "imports must resolve — the source module imports and exposes "
        "each imported attribute. Signature equality with the defining "
        "modules is additionally pinned by tests/api/test_facade.py."
    )
    scope = ("repro/api",)

    @staticmethod
    def _find_all(tree: ast.Module) -> Optional[ast.Assign]:
        for stmt in tree.body:
            if (isinstance(stmt, ast.Assign)
                    and any(isinstance(t, ast.Name) and t.id == "__all__"
                            for t in stmt.targets)):
                return stmt
        return None

    @staticmethod
    def _resolve(module: str, name: str) -> bool:
        """True when ``from module import name`` would succeed."""
        import importlib

        try:
            mod = importlib.import_module(module)
        except ImportError:
            return False
        if hasattr(mod, name):
            return True
        try:  # submodule not yet imported as an attribute
            importlib.import_module(f"{module}.{name}")
            return True
        except ImportError:
            return False

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        bound: set = set()
        imported: List[Tuple[str, ast.ImportFrom]] = []
        for stmt in tree.body:
            if isinstance(stmt, ast.ImportFrom):
                if stmt.module == "__future__":
                    continue
                for alias in stmt.names:
                    if alias.name == "*":
                        yield self.finding(
                            stmt, path,
                            "wildcard import in the public facade; enumerate "
                            "every re-exported name so __all__ stays auditable",
                        )
                        continue
                    bound.add(alias.asname or alias.name)
                    imported.append((alias.asname or alias.name, stmt))
                    if (stmt.module and stmt.module.split(".")[0] == "repro"
                            and not self._resolve(stmt.module, alias.name)):
                        yield self.finding(
                            stmt, path,
                            f"facade import `{alias.name}` does not resolve "
                            f"from `{stmt.module}`",
                        )
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound.add(alias.asname or alias.name.split(".")[0])
                    imported.append(
                        (alias.asname or alias.name.split(".")[0], stmt)  # type: ignore[arg-type]
                    )
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                bound.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                bound.update(
                    t.id for t in stmt.targets if isinstance(t, ast.Name)
                )
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name):
                bound.add(stmt.target.id)

        all_stmt = self._find_all(tree)
        if all_stmt is None:
            yield self.finding(
                tree.body[0] if tree.body else tree, path,
                "public facade defines no __all__; the blessed surface must "
                "be an explicit literal list",
            )
            return
        if not isinstance(all_stmt.value, (ast.List, ast.Tuple)):
            yield self.finding(
                all_stmt, path,
                "__all__ must be a literal list/tuple of string names",
            )
            return
        entries: List[str] = []
        for elt in all_stmt.value.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                entries.append(elt.value)
            else:
                yield self.finding(
                    elt, path,
                    "__all__ entries must be plain string literals",
                )
        seen: set = set()
        for name in entries:
            if name in seen:
                yield self.finding(
                    all_stmt, path, f"duplicate __all__ entry `{name}`",
                )
            seen.add(name)
            if name not in bound:
                yield self.finding(
                    all_stmt, path,
                    f"__all__ exports `{name}` but the facade never binds it",
                )
        for name, stmt in imported:
            if not name.startswith("_") and name not in seen:
                yield self.finding(
                    stmt, path,
                    f"facade imports `{name}` but omits it from __all__; "
                    f"the blessed surface must list every public re-export",
                )


# ----------------------------------------------------------------------
# HD008 — serialization safety on the artifact/serving paths
# ----------------------------------------------------------------------

_PICKLE_MODULES = {"pickle", "cPickle", "_pickle", "dill", "joblib", "shelve"}
_CHECKSUM_HINT = re.compile(r"sha256|sha512|checksum|digest|verify|hmac", re.IGNORECASE)


@register
class SerializationSafetyRule(Rule):
    """Model artifacts load untrusted bytes; the load path must stay inert."""

    code = "HD008"
    name = "unsafe-serialization"
    description = (
        "In repro/persist and repro/serve — the code that parses "
        "on-disk/network model bytes: (a) pickle-family imports (pickle/"
        "dill/joblib/shelve) are banned, artifacts are raw .npy + JSON "
        "resolved through the explicit class registry; (b) eval/exec on "
        "artifact content is banned; (c) np.load/np.save must pass "
        "allow_pickle=False explicitly (True, or relying on the default, "
        "both flag); (d) a function that parses payload bytes with "
        "np.load must also reference the checksum machinery "
        "(sha256/digest/verify) so no artifact read skips integrity "
        "verification."
    )
    scope = ("repro/persist", "repro/serve")

    @staticmethod
    def _is_np_io(call: ast.Call, member: str) -> bool:
        name = dotted_name(call.func)
        if name is None:
            return False
        return _numpy_tail(name) == member

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for stmt in ast.walk(tree):
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    if alias.name.split(".")[0] in _PICKLE_MODULES:
                        yield self.finding(
                            stmt, path,
                            f"import of `{alias.name}` in the artifact path; "
                            f"model artifacts are pickle-free (raw .npy + "
                            f"JSON manifest, classes via the explicit registry)",
                        )
            elif isinstance(stmt, ast.ImportFrom):
                if stmt.module and stmt.module.split(".")[0] in _PICKLE_MODULES:
                    yield self.finding(
                        stmt, path,
                        f"import from `{stmt.module}` in the artifact path; "
                        f"model artifacts are pickle-free",
                    )
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if (isinstance(node.func, ast.Name)
                    and node.func.id in ("eval", "exec")):
                yield self.finding(
                    node, path,
                    f"`{node.func.id}()` on the artifact/serving path; "
                    f"manifest content must never reach the interpreter",
                )
                continue
            if self._is_np_io(node, "load") or self._is_np_io(node, "save"):
                member = "np.load" if self._is_np_io(node, "load") else "np.save"
                flag = next(
                    (kw for kw in node.keywords if kw.arg == "allow_pickle"),
                    None,
                )
                if flag is None:
                    yield self.finding(
                        node, path,
                        f"`{member}` without an explicit allow_pickle=False; "
                        f"the artifact path pins pickle off even if numpy's "
                        f"default changes",
                    )
                elif not (isinstance(flag.value, ast.Constant)
                          and flag.value.value is False):
                    yield self.finding(
                        node, path,
                        f"`{member}` with allow_pickle enabled; a pickled "
                        f"payload executes on load — artifacts must stay "
                        f"pure-array .npy",
                    )
        for fn, _cls in iter_functions(tree):
            loads = [
                node for node in ast.walk(fn)
                if isinstance(node, ast.Call) and self._is_np_io(node, "load")
            ]
            if not loads:
                continue
            verified = any(
                _CHECKSUM_HINT.search(dotted_name(n) or "")
                for n in ast.walk(fn)
                if isinstance(n, (ast.Name, ast.Attribute))
            )
            if not verified:
                for node in loads:
                    yield self.finding(
                        node, path,
                        f"`{fn.name}` parses payload bytes with np.load but "
                        f"never references the checksum machinery "
                        f"(sha256/digest/verify); artifact reads must verify "
                        f"integrity before parsing",
                    )


__all__ = [
    "RULES",
    "Rule",
    "all_rules",
    "dotted_name",
    "iter_functions",
    "register",
]
