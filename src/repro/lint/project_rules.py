"""Project-wide rules HD009–HD012: checks that need the whole tree.

These run in the engine's second pass over the :class:`ProjectIndex`
built from every linted file, which is what lets them see across module
boundaries: a lock acquired in one method and skipped in another, an
environment knob read far from the blessed resolvers, a metric name
typo'd relative to its family in a different package, or a dense array
produced in ``repro.core`` and consumed as packed words elsewhere.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.project import (
    AttrAccess,
    ClassIndex,
    ModuleIndex,
    ProjectIndex,
    ProjectRule,
)
from repro.lint.rules import register

# ----------------------------------------------------------------------
# HD009 — lock discipline / shared-state races in the threaded packages
# ----------------------------------------------------------------------


def _tracked_accesses(
    ci: ClassIndex,
) -> Iterator[Tuple[str, AttrAccess]]:
    """(method, access) pairs for race-relevant attributes.

    ``__init__`` is construction-time (pre-publication) and excluded;
    synchronisation primitives are themselves thread-safe and excluded.
    """
    skip = set(ci.sync_attrs) | set(ci.lock_attrs)
    for mname, method in ci.methods.items():
        if mname == "__init__":
            continue
        for acc in method.accesses:
            if acc.attr not in skip:
                yield mname, acc


@register
class LockDisciplineRule(ProjectRule):
    """Shared mutable state in threaded code must be lock-protected."""

    code = "HD009"
    name = "lock-discipline"
    description = (
        "In the threaded packages (repro.serve, repro.lifecycle, "
        "repro.parallel, repro.scenarios.load) instance attributes shared "
        "with a worker thread must be guarded: no unlocked writes visible "
        "to a thread entry point, no access to a lock-guarded attribute "
        "outside its `with self._lock`, no unlocked read-modify-write, no "
        "attribute re-assigned by several public lifecycle methods "
        "without a lock, and no two locks acquired in opposite orders "
        "(deadlock)."
    )
    scope = (
        "repro/serve",
        "repro/lifecycle",
        "repro/parallel",
        "repro/scenarios/load",
    )

    def check_project(
        self, index: ProjectIndex, *, respect_scope: bool = True
    ) -> Iterator[Finding]:
        for mod in index.modules:
            if mod.is_test or not self.in_scope(mod, respect_scope):
                continue
            for ci in mod.classes.values():
                yield from self._check_class(mod, ci)

    # -- clauses -------------------------------------------------------
    def _check_class(
        self, mod: ModuleIndex, ci: ClassIndex
    ) -> Iterator[Finding]:
        workers = ci.worker_methods()
        accesses = list(_tracked_accesses(ci))

        # Attrs with at least one *write* under a lock are "guarded":
        # the lock is evidently meant to protect their mutation.
        guarded: Dict[str, str] = {}
        for _, acc in accesses:
            if acc.kind in ("write", "rmw") and acc.locks:
                guarded.setdefault(acc.attr, acc.locks[0])

        # (a) worker-thread unlocked write vs unlocked public access.
        worker_writes: Dict[str, Tuple[str, AttrAccess]] = {}
        for mname, acc in accesses:
            if mname in workers and acc.kind in ("write", "rmw") and not acc.locks:
                worker_writes.setdefault(acc.attr, (mname, acc))
        flagged_a: Set[str] = set()
        for mname, acc in accesses:
            method = ci.methods[mname]
            if (
                acc.attr in worker_writes
                and acc.attr not in flagged_a
                and mname not in workers
                and method.is_public
                and not acc.locks
            ):
                wname, _ = worker_writes[acc.attr]
                flagged_a.add(acc.attr)
                yield self.finding_at(
                    mod.path, acc.line, acc.col,
                    f"`{ci.name}.{acc.attr}` is written by worker-thread "
                    f"entry point `{wname}` and accessed here in "
                    f"`{mname}` with no common lock held",
                )

        # (b) access to a guarded attribute outside its lock.
        flagged_b: Set[str] = set()
        for mname, acc in accesses:
            if (
                acc.attr in guarded
                and not acc.locks
                and acc.attr not in flagged_b
                and acc.attr not in flagged_a
            ):
                flagged_b.add(acc.attr)
                yield self.finding_at(
                    mod.path, acc.line, acc.col,
                    f"`{ci.name}.{acc.attr}` is guarded by "
                    f"`self.{guarded[acc.attr]}` elsewhere but accessed "
                    f"here in `{mname}` without it",
                )

        # (c) inconsistent lock acquisition order across methods.
        order_sites: Dict[Tuple[str, str], str] = {}
        for mname, method in ci.methods.items():
            for pair in method.lock_pairs:
                order_sites.setdefault(pair, mname)
        for (a, b), mname in sorted(order_sites.items()):
            if a < b and (b, a) in order_sites:
                other = order_sites[(b, a)]
                line = ci.methods[other].line
                yield self.finding_at(
                    mod.path, line, 0,
                    f"`{ci.name}` acquires `self.{a}` -> `self.{b}` in "
                    f"`{mname}` but `self.{b}` -> `self.{a}` in "
                    f"`{other}`; inconsistent order can deadlock",
                )

        if not mod.uses_threads:
            return

        # (d) unlocked read-modify-write in a thread-using module.
        flagged_d: Set[str] = set()
        for mname, acc in accesses:
            if (
                acc.kind == "rmw"
                and not acc.locks
                and acc.attr not in flagged_d
                and acc.attr not in flagged_a
                and acc.attr not in flagged_b
            ):
                flagged_d.add(acc.attr)
                yield self.finding_at(
                    mod.path, acc.line, acc.col,
                    f"unlocked read-modify-write of `{ci.name}.{acc.attr}` "
                    f"in `{mname}`; concurrent callers can lose updates",
                )

        # (e) the same attr re-assigned unlocked from several public
        # lifecycle methods (start/stop-style TOCTOU races).
        writers: Dict[str, List[Tuple[str, AttrAccess]]] = {}
        for mname, acc in accesses:
            if (
                acc.kind in ("write", "rmw")
                and not acc.locks
                and ci.methods[mname].is_public
                and mname not in workers
            ):
                per = writers.setdefault(acc.attr, [])
                if all(m != mname for m, _ in per):
                    per.append((mname, acc))
        for attr, sites in sorted(writers.items()):
            if len(sites) < 2 or attr in flagged_a | flagged_b | flagged_d:
                continue
            names = ", ".join(m for m, _ in sites)
            _, acc = sites[1]
            yield self.finding_at(
                mod.path, acc.line, acc.col,
                f"`{ci.name}.{attr}` is re-assigned without a lock from "
                f"several public methods ({names}); concurrent lifecycle "
                f"calls race on it",
            )


# ----------------------------------------------------------------------
# HD010 — os.environ reads outside the blessed config resolvers
# ----------------------------------------------------------------------

#: Modules allowed to read the environment directly: the documented
#: REPRO_* resolvers.  Everything else must go through them so knobs
#: stay centrally discoverable.
BLESSED_ENV_READERS = (
    "repro/parallel/pool.py",
    "repro/kernels/registry.py",
    "repro/kernels/native_build.py",
    "repro/utils/contracts.py",
    "repro/obs/spans.py",
    "repro/serve/config.py",
)


@register
class ConfigDriftRule(ProjectRule):
    """Environment knobs are read only by the blessed resolvers."""

    code = "HD010"
    name = "config-drift"
    description = (
        "os.environ / os.getenv reads are confined to the blessed "
        "resolvers (repro.parallel.resolve_config, the kernel registry, "
        "repro.utils.contracts, repro.obs.spans, "
        "repro.serve.config.resolve_serve_config) so every REPRO_* knob "
        "has one documented owner; ad-hoc reads elsewhere drift out of "
        "the config surface."
    )
    scope = ("src/repro", "repro/")

    def check_project(
        self, index: ProjectIndex, *, respect_scope: bool = True
    ) -> Iterator[Finding]:
        for mod in index.modules:
            if mod.is_test or not self.in_scope(mod, respect_scope):
                continue
            norm = mod.path.replace("\\", "/")
            if any(norm.endswith(b) for b in BLESSED_ENV_READERS):
                continue
            for read in mod.env_reads:
                what = f"`{read.var}`" if read.var else "the environment"
                yield self.finding_at(
                    mod.path, read.line, read.col,
                    f"environment read of {what} outside the blessed "
                    f"config resolvers; route it through "
                    f"repro.parallel.resolve_config or the kernel "
                    f"registry so the knob stays documented",
                )


# ----------------------------------------------------------------------
# HD011 — observability drift: metric/span name hygiene + test corpus
# ----------------------------------------------------------------------

_NAME_GRAMMAR_HELP = "lowercase dot-separated segments, e.g. `serve.requests`"


def _good_grammar(name: str) -> bool:
    if not name:
        return False
    for seg in name.replace("-", ".").replace("_", ".").split("."):
        if not seg or not all(c.islower() or c.isdigit() for c in seg):
            return False
    return True


def _edit_distance_le1(a: str, b: str) -> bool:
    """True when a != b and Levenshtein(a, b) == 1."""
    if a == b:
        return False
    la, lb = len(a), len(b)
    if abs(la - lb) > 1:
        return False
    if la == lb:
        return sum(x != y for x, y in zip(a, b)) == 1
    if la > lb:
        a, b, la, lb = b, a, lb, la
    i = 0
    while i < la and a[i] == b[i]:
        i += 1
    return a[i:] == b[i + 1:]


@register
class ObservabilityDriftRule(ProjectRule):
    """obs metric/span names stay consistent and test-corpus covered."""

    code = "HD011"
    name = "obs-drift"
    description = (
        "repro.obs metric/span name literals must keep one kind per "
        "name, use the lowercase dotted grammar, avoid near-miss prefix "
        "families (a lone `serv.*` next to an established `serve.*` is a "
        "typo creating a new series), and every serve.*/lifecycle.*/"
        "loadgen.* metric must appear in the Prometheus test corpus "
        "under its exported repro_* name."
    )
    scope = ("src/repro", "repro/")

    def check_project(
        self, index: ProjectIndex, *, respect_scope: bool = True
    ) -> Iterator[Finding]:
        # Declarations: src modules only; coverage corpus: test modules.
        decls: List[Tuple[ModuleIndex, str, str, int, int]] = []
        for mod in index.modules:
            if mod.is_test:
                continue
            for obs in mod.obs_names:
                decls.append((mod, obs.kind, obs.name, obs.line, obs.col))

        # (a) the same name declared under conflicting metric kinds.
        first_kind: Dict[str, Tuple[str, ModuleIndex, int]] = {}
        for mod, kind, name, line, col in decls:
            if kind == "span":
                continue
            prev = first_kind.get(name)
            if prev is None:
                first_kind[name] = (kind, mod, line)
            elif prev[0] != kind and self.in_scope(mod, respect_scope):
                yield self.finding_at(
                    mod.path, line, col,
                    f"metric `{name}` declared as {kind} here but as "
                    f"{prev[0]} in {prev[1].path}:{prev[2]}; one name, "
                    f"one kind",
                )

        # (c) grammar.
        for mod, kind, name, line, col in decls:
            if not _good_grammar(name) and self.in_scope(mod, respect_scope):
                yield self.finding_at(
                    mod.path, line, col,
                    f"obs name `{name}` violates the naming grammar "
                    f"({_NAME_GRAMMAR_HELP})",
                )

        # (b) near-miss prefix families (typo'd first segment).
        families: Dict[str, Set[str]] = {}
        sites: Dict[str, Tuple[ModuleIndex, int, int, str]] = {}
        for mod, kind, name, line, col in decls:
            fam = name.split(".", 1)[0]
            families.setdefault(fam, set()).add(name)
            sites.setdefault(fam, (mod, line, col, name))
        for fam, names in sorted(families.items()):
            if len(names) != 1:
                continue
            for other, other_names in families.items():
                if len(other_names) >= 2 and _edit_distance_le1(fam, other):
                    mod, line, col, name = sites[fam]
                    if self.in_scope(mod, respect_scope):
                        yield self.finding_at(
                            mod.path, line, col,
                            f"obs name `{name}` starts a one-off family "
                            f"`{fam}.*` one edit away from the "
                            f"established `{other}.*`; probable typo "
                            f"creating a new series",
                        )
                    break

        # (d) Prometheus test-corpus coverage for the served families.
        if not index.has_test_modules:
            return
        corpus: Set[str] = set()
        for mod in index.modules:
            if mod.is_test:
                corpus.update(mod.prom_literals)
        seen: Set[str] = set()
        for mod, kind, name, line, col in decls:
            if kind == "span" or name in seen:
                continue
            seen.add(name)
            if not (
                name.startswith("serve.")
                or name.startswith("lifecycle.")
                or name.startswith("loadgen.")
            ):
                continue
            base = "repro_" + name.replace(".", "_").replace("-", "_")
            if any(lit.startswith(base) for lit in corpus):
                continue
            if self.in_scope(mod, respect_scope):
                yield self.finding_at(
                    mod.path, line, col,
                    f"metric `{name}` (exported as `{base}*`) appears in "
                    f"no test module's Prometheus corpus; add it to the "
                    f"exposition test so renames/typos fail CI",
                )


# ----------------------------------------------------------------------
# HD012 — cross-module dense arrays flowing into packed-only consumers
# ----------------------------------------------------------------------


@register
class CrossModulePackedTaintRule(ProjectRule):
    """Dense uint8 producers must not feed packed-word consumers."""

    code = "HD012"
    name = "cross-module-packed-taint"
    description = (
        "A function returning a dense (one element per bit) uint8 array "
        "in one module must not flow positionally into a packed-uint64 "
        "consumer (hamming_block, topk_hamming, popcount, ...) in "
        "another module; HD004 already catches the single-file case, "
        "this closes the cross-boundary one."
    )
    scope = ("src/repro", "repro/")

    @staticmethod
    def _resolve_callee(index: ProjectIndex, mod: ModuleIndex, callee: str):
        """Map a call-site name to its (defining module, FunctionIndex)."""
        if "." in callee:
            prefix, fn = callee.rsplit(".", 1)
            target = mod.imports.get(prefix)
            if target is not None:
                tmod, orig = target
                module = f"{tmod}.{orig}" if orig else tmod
            else:
                module = prefix
            return index.resolve_function(module, fn)
        target = mod.imports.get(callee)
        if target is None:
            return None  # local name: single-file case, HD004's turf
        tmod, orig = target
        return index.resolve_function(tmod, orig or callee)

    def check_project(
        self, index: ProjectIndex, *, respect_scope: bool = True
    ) -> Iterator[Finding]:
        for mod in index.modules:
            if mod.is_test or not self.in_scope(mod, respect_scope):
                continue
            for flow in mod.packed_flows:
                resolved = self._resolve_callee(index, mod, flow.callee)
                if resolved is None:
                    continue
                src_mod, fn = resolved
                if src_mod.module == mod.module or not fn.returns_dense:
                    continue
                yield self.finding_at(
                    mod.path, flow.line, flow.col,
                    f"dense uint8 array from `{src_mod.module}.{fn.name}` "
                    f"flows into packed-only consumer "
                    f"`{flow.consumer}` (arg {flow.arg_pos}); pack with "
                    f"pack_bits before crossing the boundary",
                )


PROJECT_RULE_CODES = ("HD009", "HD010", "HD011", "HD012")

__all__ = [
    "BLESSED_ENV_READERS",
    "ConfigDriftRule",
    "CrossModulePackedTaintRule",
    "LockDisciplineRule",
    "ObservabilityDriftRule",
    "PROJECT_RULE_CODES",
]
