"""Finding record emitted by hdlint rules."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Ordered by ``(path, line, col, code)`` so reports are stable across
    rule-execution order and dict iteration.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    rule_name: str = field(default="", compare=False)

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def render(self) -> str:
        """Human-readable single-line form, editor-clickable."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


__all__ = ["Finding"]
