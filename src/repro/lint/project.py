"""Project-wide index for hdlint's cross-module analysis pass.

The per-file rules (HD001–HD008) see one :mod:`ast` tree at a time, which
is exactly the blind spot the concurrency and drift rules need to close:
a lock acquired in one method and forgotten in another, an ``os.environ``
read hiding outside the blessed config resolvers, a metric name typo'd in
one module out of twelve, a dense ``uint8`` array produced in
``repro.core`` and consumed as packed words in ``repro.eval``.

This module builds the first pass of the two-pass engine: every linted
file is summarised into a :class:`ModuleIndex` — exported symbols, class
attribute/lock usage, function definitions and call edges,
``threading`` primitive usage, environment reads, and
``repro.obs`` metric/span name literals — and the per-run collection is a
:class:`ProjectIndex`.  Both are plain dataclasses of JSON-able
primitives (no pickling anywhere, mirroring the HD008 discipline), so
the index can be cached across CI jobs keyed on a source hash.

:class:`ProjectRule` is the second pass: a rule that runs once over the
whole index instead of once per file (see
:mod:`repro.lint.project_rules` for the HD009–HD012 catalogue).
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.lint.findings import Finding
from repro.lint.rules import Rule, dotted_name

# ----------------------------------------------------------------------
# Vocabulary
# ----------------------------------------------------------------------

#: Constructors that create a holdable (``with``-able) mutual-exclusion
#: primitive; attributes assigned one of these become "lock attributes".
_LOCK_CTORS = {"Lock", "RLock", "Condition"}

#: Constructors of thread-safe primitives whose *use* is synchronisation:
#: accesses to attributes holding one are excluded from race analysis.
_SYNC_CTORS = _LOCK_CTORS | {
    "Event", "Semaphore", "BoundedSemaphore", "Barrier",
    "Queue", "SimpleQueue", "LifoQueue", "PriorityQueue",
}

#: Call names (last dotted segment, leading underscores stripped) whose
#: first string-literal argument is an obs metric/span name.
_METRIC_KINDS = {"counter", "gauge", "histogram"}
_SPAN_FNS = {"span", "span_ctx"}

#: Producers of dense (one byte / one element per bit) arrays.
_DENSE_PRODUCER_CALLS = {"unpack_bits", "unpackbits"}
_DENSE_DTYPES = {"uint8", "int8", "bool_", "bool"}
_DENSE_ALLOCATORS = {"zeros", "ones", "empty", "full", "asarray", "array"}

#: Packed-word consumers and the positional indices that must receive
#: packed ``uint64`` batches (mirrors HD004's consumer list plus the
#: kernel-registry entry points).
PACKED_CONSUMER_POSITIONS: Dict[str, Tuple[int, ...]] = {
    "hamming_rowwise": (0, 1),
    "hamming_block": (0, 1),
    "pairwise_hamming": (0, 1),
    "normalized_pairwise_hamming": (0, 1),
    "topk_hamming": (0, 1),
    "argmin_hamming": (0, 1),
    "loo_topk_hamming": (0,),
    "popcount": (0,),
    "xor_packed": (0, 1),
    "add_bits_into": (0,),
    "majority_vote_counts": (0,),
}

_PROM_LITERAL = re.compile(r"repro_[a-z0-9_]+")


# ----------------------------------------------------------------------
# Index records (all JSON-able)
# ----------------------------------------------------------------------


@dataclass
class EnvRead:
    """One ``os.environ``/``os.getenv`` *read* (writes are not recorded)."""

    var: Optional[str]  # literal variable name when statically known
    line: int
    col: int


@dataclass
class ObsName:
    """One obs metric/span name literal at its declaration site."""

    kind: str  # counter | gauge | histogram | span
    name: str
    line: int
    col: int


@dataclass
class AttrAccess:
    """One ``self.<attr>`` access inside a method."""

    attr: str
    line: int
    col: int
    kind: str  # read | write | rmw
    locks: Tuple[str, ...]  # lock attributes lexically held at the access


@dataclass
class MethodIndex:
    name: str
    line: int
    accesses: List[AttrAccess] = field(default_factory=list)
    self_calls: List[str] = field(default_factory=list)
    lock_pairs: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def is_public(self) -> bool:
        return not self.name.startswith("_") or (
            self.name.startswith("__") and self.name.endswith("__")
        )


@dataclass
class ClassIndex:
    name: str
    line: int
    lock_attrs: Dict[str, int] = field(default_factory=dict)
    sync_attrs: List[str] = field(default_factory=list)
    thread_target_methods: List[str] = field(default_factory=list)
    methods: Dict[str, MethodIndex] = field(default_factory=dict)

    def worker_methods(self) -> set:
        """Thread entry points plus everything they reach via self-calls."""
        reach = set(self.thread_target_methods)
        frontier = list(reach)
        while frontier:
            m = frontier.pop()
            for callee in self.methods.get(m, MethodIndex(m, 0)).self_calls:
                if callee in self.methods and callee not in reach:
                    reach.add(callee)
                    frontier.append(callee)
        return reach


@dataclass
class FunctionIndex:
    name: str
    cls: Optional[str]
    line: int
    returns_dense: bool


@dataclass
class PackedFlow:
    """A positional argument feeding a packed consumer, traced to the
    call that produced it (``callee`` as written at the call site)."""

    consumer: str
    arg_pos: int
    callee: str
    line: int
    col: int


@dataclass
class ModuleIndex:
    """Everything the project rules need to know about one module."""

    path: str
    module: str
    is_test: bool
    uses_threads: bool = False
    exports: List[str] = field(default_factory=list)
    imports: Dict[str, Tuple[str, Optional[str]]] = field(default_factory=dict)
    functions: Dict[str, FunctionIndex] = field(default_factory=dict)
    classes: Dict[str, ClassIndex] = field(default_factory=dict)
    env_reads: List[EnvRead] = field(default_factory=list)
    obs_names: List[ObsName] = field(default_factory=list)
    packed_flows: List[PackedFlow] = field(default_factory=list)
    prom_literals: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ModuleIndex":
        out = cls(
            path=payload["path"],
            module=payload["module"],
            is_test=payload["is_test"],
            uses_threads=payload.get("uses_threads", False),
            exports=list(payload.get("exports", [])),
            imports={
                k: (v[0], v[1]) for k, v in payload.get("imports", {}).items()
            },
            env_reads=[EnvRead(**e) for e in payload.get("env_reads", [])],
            obs_names=[ObsName(**o) for o in payload.get("obs_names", [])],
            packed_flows=[PackedFlow(**p) for p in payload.get("packed_flows", [])],
            prom_literals=list(payload.get("prom_literals", [])),
        )
        for name, fn in payload.get("functions", {}).items():
            out.functions[name] = FunctionIndex(**fn)
        for cname, cpayload in payload.get("classes", {}).items():
            ci = ClassIndex(
                name=cpayload["name"],
                line=cpayload["line"],
                lock_attrs=dict(cpayload.get("lock_attrs", {})),
                sync_attrs=list(cpayload.get("sync_attrs", [])),
                thread_target_methods=list(
                    cpayload.get("thread_target_methods", [])
                ),
            )
            for mname, mpayload in cpayload.get("methods", {}).items():
                ci.methods[mname] = MethodIndex(
                    name=mpayload["name"],
                    line=mpayload["line"],
                    accesses=[
                        AttrAccess(
                            attr=a["attr"], line=a["line"], col=a["col"],
                            kind=a["kind"], locks=tuple(a["locks"]),
                        )
                        for a in mpayload.get("accesses", [])
                    ],
                    self_calls=list(mpayload.get("self_calls", [])),
                    lock_pairs=[
                        (p[0], p[1]) for p in mpayload.get("lock_pairs", [])
                    ],
                )
            out.classes[cname] = ci
        return out


class ProjectIndex:
    """The in-memory project model the second lint pass runs over."""

    def __init__(self, modules: Sequence[ModuleIndex]) -> None:
        self.modules: List[ModuleIndex] = sorted(modules, key=lambda m: m.path)
        self._by_name: Dict[str, ModuleIndex] = {
            m.module: m for m in self.modules
        }

    def module(self, name: str) -> Optional[ModuleIndex]:
        return self._by_name.get(name)

    @property
    def has_test_modules(self) -> bool:
        return any(m.is_test for m in self.modules)

    def resolve_function(
        self, module: str, name: str, _depth: int = 0
    ) -> Optional[Tuple[ModuleIndex, FunctionIndex]]:
        """Find ``module:name``, chasing one level of re-export imports."""
        mod = self._by_name.get(module)
        if mod is None:
            return None
        fn = mod.functions.get(name)
        if fn is not None:
            return mod, fn
        if _depth >= 2:
            return None
        target = mod.imports.get(name)
        if target is not None and target[1] is not None:
            return self.resolve_function(target[0], target[1], _depth + 1)
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {"modules": [m.to_dict() for m in self.modules]}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ProjectIndex":
        return cls(
            [ModuleIndex.from_dict(m) for m in payload.get("modules", [])]
        )


# ----------------------------------------------------------------------
# Index construction
# ----------------------------------------------------------------------


def module_name_for(path: str) -> str:
    """Best-effort dotted module path for a file path.

    ``src/repro/core/search.py`` → ``repro.core.search``; paths outside a
    recognisable package root fall back to slash-to-dot of the whole
    relative path, which is still a stable key.
    """
    norm = path.replace("\\", "/")
    parts = [p for p in norm.split("/") if p not in ("", ".")]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in ("repro", "tests"):
        if anchor in parts:
            parts = parts[parts.index(anchor):]
            break
    else:
        parts = parts[-2:]
    return ".".join(parts)


def _is_self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _call_tail(call: ast.Call) -> Optional[str]:
    name = dotted_name(call.func)
    if name is None:
        return None
    return name.rsplit(".", 1)[-1]


def _ctor_name(node: ast.AST) -> Optional[str]:
    """``threading.Lock()`` / ``queue.Queue()`` → ``Lock`` / ``Queue``."""
    if isinstance(node, ast.Call):
        return _call_tail(node)
    return None


def _is_dense_dtype(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value in _DENSE_DTYPES
    name = dotted_name(node)
    return name is not None and name.rsplit(".", 1)[-1] in _DENSE_DTYPES


def _is_dense_expr(node: ast.AST, dense_names: set) -> bool:
    """Does this expression produce a dense (unpacked) bit array?"""
    if isinstance(node, ast.Name):
        return node.id in dense_names
    if not isinstance(node, ast.Call):
        return False
    tail = _call_tail(node)
    if tail in _DENSE_PRODUCER_CALLS:
        return True
    if (
        isinstance(node.func, ast.Attribute)
        and node.func.attr == "astype"
        and node.args
        and _is_dense_dtype(node.args[0])
    ):
        return True
    if tail in _DENSE_ALLOCATORS:
        for kw in node.keywords:
            if kw.arg == "dtype" and _is_dense_dtype(kw.value):
                return True
    return False


class _MethodWalker(ast.NodeVisitor):
    """Collect attribute accesses with the lexically held lock set."""

    def __init__(self, lock_attrs: set) -> None:
        self.lock_attrs = lock_attrs
        self.held: List[str] = []
        self.accesses: List[AttrAccess] = []
        self.self_calls: List[str] = []
        self.lock_pairs: List[Tuple[str, str]] = []

    def _record(self, attr: str, node: ast.AST, kind: str) -> None:
        self.accesses.append(
            AttrAccess(
                attr=attr,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                kind=kind,
                locks=tuple(self.held),
            )
        )

    def visit_With(self, node: ast.With) -> None:
        acquired: List[str] = []
        for item in node.items:
            attr = _is_self_attr(item.context_expr)
            if attr is not None and attr in self.lock_attrs:
                for held in self.held + acquired:
                    self.lock_pairs.append((held, attr))
                acquired.append(attr)
            else:
                self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        self.held.extend(acquired)
        for stmt in node.body:
            self.visit(stmt)
        del self.held[len(self.held) - len(acquired):]

    visit_AsyncWith = visit_With  # type: ignore[assignment]

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = _is_self_attr(node.target)
        if attr is not None:
            self._record(attr, node, "rmw")
        else:
            self.visit(node.target)
        self.visit(node.value)

    def visit_Assign(self, node: ast.Assign) -> None:
        value_reads = {
            _is_self_attr(n)
            for n in ast.walk(node.value)
            if _is_self_attr(n) is not None
        }
        for tgt in node.targets:
            attr = _is_self_attr(tgt)
            if attr is None:
                self.visit(tgt)
            else:
                self._record(attr, tgt, "rmw" if attr in value_reads else "write")
        self.visit(node.value)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        attr = _is_self_attr(node)
        if attr is not None:
            if isinstance(node.ctx, ast.Load):
                self._record(attr, node, "read")
            elif isinstance(node.ctx, (ast.Store, ast.Del)):
                self._record(attr, node, "write")
            return
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None and name.startswith("self.") and name.count(".") == 1:
            self.self_calls.append(name.split(".", 1)[1])
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # Nested functions run on whatever thread calls them; keep walking
        # so closures over ``self`` are still attributed to this method.
        for stmt in node.body:
            self.visit(stmt)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]


def _thread_targets(cls_node: ast.ClassDef) -> List[str]:
    """Method names handed to ``Thread(target=self.m)`` / ``submit(self.m)``."""
    targets: List[str] = []
    for node in ast.walk(cls_node):
        if not isinstance(node, ast.Call):
            continue
        tail = _call_tail(node)
        if tail == "Thread":
            for kw in node.keywords:
                if kw.arg == "target":
                    attr = _is_self_attr(kw.value)
                    if attr is not None:
                        targets.append(attr)
        elif tail in ("submit", "start_new_thread"):
            if node.args:
                attr = _is_self_attr(node.args[0])
                if attr is not None:
                    targets.append(attr)
    return targets


def _index_class(cls_node: ast.ClassDef) -> ClassIndex:
    ci = ClassIndex(name=cls_node.name, line=cls_node.lineno)
    methods = [
        n for n in cls_node.body
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    # First pass: classify attributes assigned synchronisation primitives.
    for method in methods:
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            ctor = _ctor_name(node.value)
            if ctor is None or ctor not in _SYNC_CTORS:
                continue
            for tgt in node.targets:
                attr = _is_self_attr(tgt)
                if attr is None:
                    continue
                if ctor in _LOCK_CTORS:
                    ci.lock_attrs.setdefault(attr, node.lineno)
                if attr not in ci.sync_attrs:
                    ci.sync_attrs.append(attr)
    ci.thread_target_methods = _thread_targets(cls_node)
    lock_names = set(ci.lock_attrs)
    for method in methods:
        walker = _MethodWalker(lock_names)
        for stmt in method.body:
            walker.visit(stmt)
        ci.methods[method.name] = MethodIndex(
            name=method.name,
            line=method.lineno,
            accesses=walker.accesses,
            self_calls=walker.self_calls,
            lock_pairs=walker.lock_pairs,
        )
    return ci


def _index_function_body(
    fn: ast.FunctionDef, mi: ModuleIndex, cls: Optional[str]
) -> None:
    """Record dense-return classification and packed-consumer flows."""
    dense_names: set = set()
    assigned_calls: Dict[str, str] = {}
    returns_dense = False
    for node in ast.walk(fn):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            tgt = node.targets[0]
            if isinstance(tgt, ast.Name):
                if _is_dense_expr(node.value, dense_names):
                    dense_names.add(tgt.id)
                elif tgt.id in dense_names:
                    dense_names.discard(tgt.id)
                if isinstance(node.value, ast.Call):
                    callee = dotted_name(node.value.func)
                    if callee is not None:
                        assigned_calls[tgt.id] = callee
        elif isinstance(node, ast.Return) and node.value is not None:
            if _is_dense_expr(node.value, dense_names):
                returns_dense = True
    qual = f"{cls}.{fn.name}" if cls else fn.name
    mi.functions[qual] = FunctionIndex(
        name=fn.name, cls=cls, line=fn.lineno, returns_dense=returns_dense
    )
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        tail = _call_tail(node)
        positions = PACKED_CONSUMER_POSITIONS.get(tail or "")
        if positions is None:
            continue
        for pos in positions:
            if pos >= len(node.args):
                continue
            arg = node.args[pos]
            callee: Optional[str] = None
            if isinstance(arg, ast.Call):
                callee = dotted_name(arg.func)
            elif isinstance(arg, ast.Name):
                callee = assigned_calls.get(arg.id)
            if callee is not None:
                mi.packed_flows.append(
                    PackedFlow(
                        consumer=tail or "",
                        arg_pos=pos,
                        callee=callee,
                        line=arg.lineno,
                        col=arg.col_offset,
                    )
                )


def _index_obs_and_env(tree: ast.Module, mi: ModuleIndex) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            tail = (name or "").rsplit(".", 1)[-1].lstrip("_")
            if (
                tail in _METRIC_KINDS | _SPAN_FNS
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                mi.obs_names.append(
                    ObsName(
                        kind="span" if tail in _SPAN_FNS else tail,
                        name=node.args[0].value,
                        line=node.lineno,
                        col=node.col_offset,
                    )
                )
            if name in ("os.getenv", "getenv") or (
                name is not None
                and name.split(".")[-1] == "get"
                and (name.endswith("environ.get"))
            ):
                var = None
                if node.args and isinstance(node.args[0], ast.Constant):
                    var = str(node.args[0].value)
                mi.env_reads.append(
                    EnvRead(var=var, line=node.lineno, col=node.col_offset)
                )
        elif isinstance(node, ast.Subscript) and isinstance(node.ctx, ast.Load):
            base = dotted_name(node.value)
            if base is not None and base.endswith("environ"):
                var = None
                if isinstance(node.slice, ast.Constant):
                    var = str(node.slice.value)
                mi.env_reads.append(
                    EnvRead(var=var, line=node.lineno, col=node.col_offset)
                )


def index_module(tree: ast.Module, path: str) -> ModuleIndex:
    """Summarise one parsed module for the project pass."""
    norm = path.replace("\\", "/")
    mi = ModuleIndex(
        path=path,
        module=module_name_for(path),
        is_test="tests/" in norm or norm.startswith("tests"),
    )
    prom: set = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            prom.update(_PROM_LITERAL.findall(node.value))
    mi.prom_literals = sorted(prom)

    for stmt in tree.body:
        if isinstance(stmt, ast.ImportFrom) and stmt.module:
            if stmt.module == "__future__":
                continue
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                mi.imports[alias.asname or alias.name] = (stmt.module, alias.name)
        elif isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                mi.imports[local] = (
                    alias.name if alias.asname else alias.name.split(".")[0],
                    None,
                )
        elif isinstance(stmt, ast.Assign):
            for tgt in stmt.targets:
                if isinstance(tgt, ast.Name) and tgt.id == "__all__" and isinstance(
                    stmt.value, (ast.List, ast.Tuple)
                ):
                    mi.exports = [
                        elt.value
                        for elt in stmt.value.elts
                        if isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)
                    ]

    threads_hint = ("threading", "Thread", "ThreadPoolExecutor",
                    "ThreadingHTTPServer", "concurrent.futures")
    for node in ast.walk(tree):
        name = dotted_name(node) if isinstance(node, (ast.Name, ast.Attribute)) else None
        if name is not None and any(h in name for h in threads_hint):
            mi.uses_threads = True
            break

    def walk_defs(node: ast.AST, cls: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                mi.classes[child.name] = _index_class(child)
                walk_defs(child, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                _index_function_body(child, mi, cls)
            else:
                walk_defs(child, cls)

    walk_defs(tree, None)
    _index_obs_and_env(tree, mi)
    return mi


def build_index(sources: Dict[str, str]) -> ProjectIndex:
    """Index a ``{path: source}`` mapping (the test-corpus entry point)."""
    modules = []
    for path, source in sources.items():
        modules.append(index_module(ast.parse(source, filename=path), path))
    return ProjectIndex(modules)


# ----------------------------------------------------------------------
# Project rules
# ----------------------------------------------------------------------


class ProjectRule(Rule):
    """A rule that runs once over the :class:`ProjectIndex`.

    ``check`` (the per-file entry point) is intentionally empty; the
    engine calls :meth:`check_project` after the per-file pass.  Path
    scoping applies per *module*: findings are only emitted for modules
    the rule's ``scope`` covers, unless the engine disables scoping.
    """

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        return iter(())

    def check_project(
        self, index: ProjectIndex, *, respect_scope: bool = True
    ) -> Iterator[Finding]:
        raise NotImplementedError

    def in_scope(self, module: ModuleIndex, respect_scope: bool) -> bool:
        return (not respect_scope) or self.applies_to(module.path)

    def finding_at(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        return Finding(
            path=path,
            line=line,
            col=col + 1,
            code=self.code,
            message=message,
            rule_name=self.name,
        )


# ----------------------------------------------------------------------
# Index cache (CI: keyed on a source hash, shared between jobs)
# ----------------------------------------------------------------------

CACHE_SCHEMA = 1


def source_hash_key(files: Sequence[Tuple[str, str]]) -> str:
    """Stable key over ``(path, source)`` pairs."""
    digest = hashlib.sha256()
    for path, source in sorted(files):
        digest.update(path.encode("utf-8"))
        digest.update(b"\0")
        digest.update(hashlib.sha256(source.encode("utf-8")).digest())
    return digest.hexdigest()


def load_index_cache(path: Path, key: str) -> Optional[ProjectIndex]:
    """Return the cached index when ``key`` matches, else None."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != CACHE_SCHEMA
        or payload.get("key") != key
    ):
        return None
    try:
        return ProjectIndex.from_dict(payload)
    except (KeyError, TypeError):
        return None


def save_index_cache(path: Path, key: str, index: ProjectIndex) -> None:
    payload = {"schema": CACHE_SCHEMA, "key": key} | index.to_dict()
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")


__all__ = [
    "AttrAccess",
    "ClassIndex",
    "EnvRead",
    "FunctionIndex",
    "MethodIndex",
    "ModuleIndex",
    "ObsName",
    "PACKED_CONSUMER_POSITIONS",
    "PackedFlow",
    "ProjectIndex",
    "ProjectRule",
    "build_index",
    "index_module",
    "load_index_cache",
    "module_name_for",
    "save_index_cache",
    "source_hash_key",
]
