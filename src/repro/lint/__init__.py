"""hdlint — project-specific static analysis for HDC invariants.

PRs 1–2 made the hot paths fast by relying on contracts nothing enforced:
packed ``uint64`` words with a masked tail, integer-only Hamming
arithmetic, ``Generator``-based seeding, and engine paths pinned to
``*_reference`` oracles.  This package machine-checks them.

Usage::

    python -m repro.lint src            # or the repro-lint console script
    repro-lint --list-rules
    repro-lint src --format=json

Rules (catalogue in DESIGN.md §7).  HD001–HD008 are per-file checks;
HD009–HD012 run in a second pass over a project-wide index built from
every linted module, so they see across file boundaries:

========  =====================================================
HD001     legacy ``np.random.*`` global-state RNG in src/
HD002     float upcasts inside integer Hamming/popcount kernels
HD003     quadratic-memory smells (apply_along_axis, row loops,
          dense materialisation on streaming paths)
HD004     packed-array hygiene (unmasked NOT, non-uint64 casts)
HD005     mutable defaults; unvalidated public ``dim`` params
HD006     engine / ``*_reference`` oracle signature drift
HD007     ``repro.api`` facade integrity (__all__ complete and
          resolvable, no wildcard imports)
HD008     unsafe serialization on the artifact/serving paths
          (pickle imports, eval/exec, allow_pickle, unverified
          np.load)
HD009     lock discipline in the threaded packages (unlocked
          shared writes, guarded attrs accessed lock-free,
          unlocked RMW, lifecycle races, lock-order inversion)
HD010     ``os.environ`` reads outside the blessed config
          resolvers (REPRO_* knobs stay centrally documented)
HD011     obs metric/span name drift (kind conflicts, grammar,
          near-miss prefix families, Prometheus test-corpus
          coverage for serve.*/loadgen.*)
HD012     dense ``uint8`` arrays flowing across module borders
          into packed-``uint64``-only consumers
========  =====================================================

Suppress a finding with ``# hdlint: disable=HD0xx`` (same line; a
justification after the codes is encouraged),
``# hdlint: disable-next-line=...`` or ``# hdlint: disable-file=...``.
"""

from repro.lint.engine import (
    DEFAULT_EXCLUDES,
    LintError,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    lint_sources,
)
from repro.lint.findings import Finding
from repro.lint.project import ModuleIndex, ProjectIndex, ProjectRule, build_index
from repro.lint.rules import RULES, Rule, all_rules
from repro.lint.sarif import to_sarif
from repro.lint.suppressions import Suppressions, parse_suppressions

__all__ = [
    "DEFAULT_EXCLUDES",
    "Finding",
    "LintError",
    "ModuleIndex",
    "ProjectIndex",
    "ProjectRule",
    "RULES",
    "Rule",
    "Suppressions",
    "all_rules",
    "build_index",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "lint_sources",
    "parse_suppressions",
    "to_sarif",
]
