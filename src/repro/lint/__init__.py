"""hdlint — project-specific static analysis for HDC invariants.

PRs 1–2 made the hot paths fast by relying on contracts nothing enforced:
packed ``uint64`` words with a masked tail, integer-only Hamming
arithmetic, ``Generator``-based seeding, and engine paths pinned to
``*_reference`` oracles.  This package machine-checks them.

Usage::

    python -m repro.lint src            # or the repro-lint console script
    repro-lint --list-rules
    repro-lint src --format=json

Rules (catalogue in DESIGN.md §7):

========  =====================================================
HD001     legacy ``np.random.*`` global-state RNG in src/
HD002     float upcasts inside integer Hamming/popcount kernels
HD003     quadratic-memory smells (apply_along_axis, row loops,
          dense materialisation on streaming paths)
HD004     packed-array hygiene (unmasked NOT, non-uint64 casts)
HD005     mutable defaults; unvalidated public ``dim`` params
HD006     engine / ``*_reference`` oracle signature drift
HD007     ``repro.api`` facade integrity (__all__ complete and
          resolvable, no wildcard imports)
HD008     unsafe serialization on the artifact/serving paths
          (pickle imports, eval/exec, allow_pickle, unverified
          np.load)
========  =====================================================

Suppress a finding with ``# hdlint: disable=HD0xx`` (same line),
``# hdlint: disable-next-line=...`` or ``# hdlint: disable-file=...``.
"""

from repro.lint.engine import (
    LintError,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.findings import Finding
from repro.lint.rules import RULES, Rule, all_rules
from repro.lint.suppressions import Suppressions, parse_suppressions

__all__ = [
    "Finding",
    "LintError",
    "RULES",
    "Rule",
    "Suppressions",
    "all_rules",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "parse_suppressions",
]
