"""Suppression-comment parsing for hdlint.

Three comment forms are honoured, mirroring the pylint/ruff idiom:

* ``# hdlint: disable=HD001`` — suppress the listed rule(s) on the same
  physical line the finding is reported on;
* ``# hdlint: disable-next-line=HD001,HD003`` — suppress on the line
  immediately below the comment;
* ``# hdlint: disable-file=HD005`` — suppress for the whole file.

Codes are comma-separated; ``all`` suppresses every rule.  Unknown text
after the directive is ignored so suppressions can carry a justification::

    protos = pairwise_hamming(q, protos)  # hdlint: disable=HD003 -- n_classes rows
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

_DIRECTIVE = re.compile(
    r"#\s*hdlint:\s*(?P<kind>disable(?:-next-line|-file)?)\s*=\s*"
    r"(?P<codes>(?:all|HD\d+)(?:\s*,\s*(?:all|HD\d+))*)",
    re.IGNORECASE,
)

_ALL = "all"


def _parse_codes(raw: str) -> FrozenSet[str]:
    return frozenset(c.strip().upper() if c.strip().lower() != _ALL else _ALL
                     for c in raw.split(","))


@dataclass
class Suppressions:
    """Parsed suppression state for one file."""

    file_codes: FrozenSet[str] = frozenset()
    line_codes: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def is_suppressed(self, code: str, line: int) -> bool:
        code = code.upper()
        if code in self.file_codes or _ALL in self.file_codes:
            return True
        codes = self.line_codes.get(line, frozenset())
        return code in codes or _ALL in codes


def parse_suppressions(source: str) -> Suppressions:
    """Scan ``source`` for hdlint directives and build the suppression map."""
    file_codes: Set[str] = set()
    line_codes: Dict[int, Set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _DIRECTIVE.search(text)
        if m is None:
            continue
        kind = m.group("kind").lower()
        codes = _parse_codes(m.group("codes"))
        if kind == "disable-file":
            file_codes.update(codes)
        elif kind == "disable-next-line":
            line_codes.setdefault(lineno + 1, set()).update(codes)
        else:  # disable (same line)
            line_codes.setdefault(lineno, set()).update(codes)
    return Suppressions(
        file_codes=frozenset(file_codes),
        line_codes={k: frozenset(v) for k, v in line_codes.items()},
    )


__all__ = ["Suppressions", "parse_suppressions"]
