"""Suppression-comment parsing for hdlint.

Three comment forms are honoured, mirroring the pylint/ruff idiom:

* ``# hdlint: disable=HD001`` — suppress the listed rule(s) on the same
  physical line the finding is reported on;
* ``# hdlint: disable-next-line=HD001,HD003`` — suppress on the line
  immediately below the comment;
* ``# hdlint: disable-file=HD005`` — suppress for the whole file.

Codes are comma-separated; ``all`` suppresses every rule.  Unknown text
after the directive is ignored so suppressions can carry a justification::

    protos = pairwise_hamming(q, protos)  # hdlint: disable=HD003 -- n_classes rows
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

_DIRECTIVE = re.compile(
    r"#\s*hdlint:\s*(?P<kind>disable(?:-next-line|-file)?)\s*=\s*"
    r"(?P<codes>(?:all|HD\d+)(?:\s*,\s*(?:all|HD\d+))*)",
    re.IGNORECASE,
)

_ALL = "all"


def _parse_codes(raw: str) -> FrozenSet[str]:
    return frozenset(c.strip().upper() if c.strip().lower() != _ALL else _ALL
                     for c in raw.split(","))


@dataclass
class Suppressions:
    """Parsed suppression state for one file."""

    file_codes: FrozenSet[str] = frozenset()
    line_codes: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def is_suppressed(self, code: str, line: int) -> bool:
        code = code.upper()
        if code in self.file_codes or _ALL in self.file_codes:
            return True
        codes = self.line_codes.get(line, frozenset())
        return code in codes or _ALL in codes


def _header_spans(tree: ast.Module) -> List[Tuple[int, int]]:
    """(first, last) line of every def/class *header*.

    The header starts at the first decorator (if any) and runs to the
    line before the first body statement, so it covers multi-line
    signatures.  A ``disable-next-line`` comment sitting above the
    header suppresses findings anchored anywhere inside it — most
    importantly on the ``def`` line itself, which sits *below* the
    decorators in the source.
    """
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        start = min(
            [node.lineno] + [d.lineno for d in node.decorator_list]
        )
        end = node.body[0].lineno - 1 if node.body else node.lineno
        spans.append((start, max(start, end)))
    return spans


def parse_suppressions(
    source: str, tree: Optional[ast.Module] = None
) -> Suppressions:
    """Scan ``source`` for hdlint directives and build the suppression map.

    When the parsed ``tree`` is supplied, ``disable-next-line`` comments
    that land on a def/class header (decorators, multi-line signatures)
    suppress the whole header span, not just the single next line.
    """
    file_codes: Set[str] = set()
    line_codes: Dict[int, Set[str]] = {}
    spans = _header_spans(tree) if tree is not None else []

    def _cover(target: int, codes: FrozenSet[str]) -> None:
        lines = {target}
        for start, end in spans:
            if start <= target <= end:
                lines.update(range(start, end + 1))
        for line in lines:
            line_codes.setdefault(line, set()).update(codes)

    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _DIRECTIVE.search(text)
        if m is None:
            continue
        kind = m.group("kind").lower()
        codes = _parse_codes(m.group("codes"))
        if kind == "disable-file":
            file_codes.update(codes)
        elif kind == "disable-next-line":
            _cover(lineno + 1, codes)
        else:  # disable (same line)
            _cover(lineno, codes)
    return Suppressions(
        file_codes=frozenset(file_codes),
        line_codes={k: frozenset(v) for k, v in line_codes.items()},
    )


__all__ = ["Suppressions", "parse_suppressions"]
