"""SARIF 2.1.0 serialisation for hdlint findings.

SARIF (Static Analysis Results Interchange Format) is the interchange
schema GitHub code scanning ingests: uploading the run via
``github/codeql-action/upload-sarif`` turns every finding into an inline
annotation on the PR diff.  Only the required subset of the spec is
emitted — tool metadata with the full rule catalogue, plus one result
per finding with a physical location.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.lint.findings import Finding
from repro.lint.rules import Rule, all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: hdlint findings are invariant violations, not style nits.
_LEVEL = "error"


def _rule_descriptor(rule: Rule) -> Dict[str, Any]:
    return {
        "id": rule.code,
        "name": rule.name,
        "shortDescription": {"text": rule.name.replace("-", " ")},
        "fullDescription": {"text": rule.description},
        "defaultConfiguration": {"level": _LEVEL},
    }


def _uri(path: str) -> str:
    return path.replace("\\", "/").lstrip("./")


def to_sarif(
    findings: Sequence[Finding], *, rules: Sequence[Rule] = ()
) -> Dict[str, Any]:
    """Build the SARIF 2.1.0 log document for ``findings``.

    ``rules`` defaults to the full registered catalogue so rule metadata
    renders even for runs with zero findings.
    """
    catalogue: List[Rule] = list(rules) or all_rules()
    rule_index = {rule.code: i for i, rule in enumerate(catalogue)}
    results: List[Dict[str, Any]] = []
    for f in findings:
        result: Dict[str, Any] = {
            "ruleId": f.code,
            "level": _LEVEL,
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _uri(f.path),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": max(1, f.line),
                            "startColumn": max(1, f.col),
                        },
                    }
                }
            ],
        }
        if f.code in rule_index:
            result["ruleIndex"] = rule_index[f.code]
        results.append(result)
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA_URI,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "semanticVersion": "1.0.0",
                        "rules": [_rule_descriptor(r) for r in catalogue],
                    }
                },
                "columnKind": "unicodeCodePoints",
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///", "description": {
                        "text": "repository root"}}
                },
                "results": results,
            }
        ],
    }


__all__ = ["SARIF_SCHEMA_URI", "SARIF_VERSION", "to_sarif"]
