"""Dataset substrate (S13): calibrated synthetic Pima + Sylhet, imputation,
CSV interchange for the real files. See DESIGN.md §3 for the substitution
rationale."""

from repro.data.datasets import Dataset
from repro.data.pima import (
    generate_pima,
    load_pima_r,
    load_pima_m,
    pima_feature_specs,
    PIMA_FEATURES,
    PIMA_MISSING_COLUMNS,
)
from repro.data.sylhet import (
    generate_sylhet,
    load_sylhet,
    sylhet_feature_specs,
    SYLHET_FEATURES,
)
from repro.data.impute import (
    drop_incomplete,
    median_impute_by_class,
    mean_impute,
    missing_mask,
)
from repro.data.images import cross_mask, generate_binarized_images, ring_mask
from repro.data.io import load_pima_csv, load_sylhet_csv, save_dataset_csv
from repro.data.dpf import Relative, compute_dpf, GENE_SHARE
from repro.data.synth import (
    BetaMarginal,
    BernoulliMarginal,
    build_correlation,
    copula_uniforms,
    nearest_positive_definite,
    sample_continuous,
)

__all__ = [
    "Dataset",
    "generate_pima",
    "load_pima_r",
    "load_pima_m",
    "pima_feature_specs",
    "PIMA_FEATURES",
    "PIMA_MISSING_COLUMNS",
    "generate_sylhet",
    "load_sylhet",
    "sylhet_feature_specs",
    "SYLHET_FEATURES",
    "drop_incomplete",
    "median_impute_by_class",
    "mean_impute",
    "missing_mask",
    "cross_mask",
    "generate_binarized_images",
    "ring_mask",
    "load_pima_csv",
    "load_sylhet_csv",
    "save_dataset_csv",
    "Relative",
    "compute_dpf",
    "GENE_SHARE",
    "BetaMarginal",
    "BernoulliMarginal",
    "build_correlation",
    "copula_uniforms",
    "nearest_positive_definite",
    "sample_continuous",
]
