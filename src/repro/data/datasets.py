"""Dataset container shared by loaders, experiments and examples."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.records import FeatureSpec


@dataclass
class Dataset:
    """A labelled tabular dataset plus the metadata the pipeline needs.

    Attributes
    ----------
    name:
        Identifier used in tables (e.g. ``"pima_r"``).
    X:
        ``(n, F)`` float matrix.
    y:
        ``(n,)`` int labels; 1 = diabetic (positive).
    feature_names:
        Column names, length F.
    specs:
        Per-column :class:`FeatureSpec` driving the record encoder.
    """

    name: str
    X: np.ndarray
    y: np.ndarray
    feature_names: List[str]
    specs: List[FeatureSpec]

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=np.float64)
        self.y = np.asarray(self.y, dtype=np.int64)
        if self.X.ndim != 2:
            raise ValueError(f"X must be 2-d, got shape {self.X.shape}")
        if self.y.shape != (self.X.shape[0],):
            raise ValueError(
                f"y shape {self.y.shape} does not match X rows {self.X.shape[0]}"
            )
        if len(self.feature_names) != self.X.shape[1]:
            raise ValueError("feature_names length mismatch")
        if len(self.specs) != self.X.shape[1]:
            raise ValueError("specs length mismatch")

    @property
    def n_samples(self) -> int:
        return int(self.X.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.X.shape[1])

    @property
    def n_positive(self) -> int:
        return int(np.sum(self.y == 1))

    @property
    def n_negative(self) -> int:
        return int(np.sum(self.y == 0))

    def subset(self, idx: np.ndarray, *, name: Optional[str] = None) -> "Dataset":
        """Row-subset view copied into a new Dataset."""
        idx = np.asarray(idx)
        return Dataset(
            name=name or self.name,
            X=self.X[idx].copy(),
            y=self.y[idx].copy(),
            feature_names=list(self.feature_names),
            specs=list(self.specs),
        )

    def class_summary(self) -> str:
        return (
            f"{self.name}: {self.n_samples} rows, {self.n_features} features, "
            f"{self.n_positive} positive / {self.n_negative} negative"
        )
