"""Diabetes Pedigree Function (DPF) — the paper's §II-A.1 formula.

Smith et al. (1988) quantify family history as

            Σ_i ( K_i (88 − ADM_i) + 20 )
    DPF = ---------------------------------
            Σ_j ( K_j (ACL_j − 14) + 50 )

where *i* ranges over relatives who developed diabetes before the exam
date (ADM = relative's age at diagnosis), *j* over relatives who did not
(ACL = relative's age at last clear assessment), and K is the fraction of
shared genes (0.5 parent/sibling, 0.25 half-sibling/grandparent/aunt/
uncle, 0.125 cousin / parent's half-sibling).  Constants 88/14 normalise
to the cohort's max/min relative ages; 20/50 temper the numerator and
denominator so young diabetic relatives and old clear relatives dominate.

The synthetic Pima generator draws DPF from the published marginal, but
this module lets users compute the feature from raw pedigree data — the
same path a real EHR integration would take (§III-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable

GENE_SHARE: Dict[str, float] = {
    "parent": 0.5,
    "sibling": 0.5,
    "half-sibling": 0.25,
    "grandparent": 0.25,
    "aunt": 0.25,
    "uncle": 0.25,
    "cousin": 0.125,
    "parent-half-sibling": 0.125,
}

_ADM_CEILING = 88.0  # normalising max relative age (paper constant)
_ACL_FLOOR = 14.0    # normalising min relative age (paper constant)
_NUM_OFFSET = 20.0
_DEN_OFFSET = 50.0


@dataclass(frozen=True)
class Relative:
    """One relative's contribution to the pedigree.

    Attributes
    ----------
    relation:
        One of :data:`GENE_SHARE` (or pass ``gene_share`` directly).
    diabetic:
        True if the relative developed diabetes before the exam date.
    age:
        ADM (age at diagnosis) if diabetic, else ACL (age at last clear
        assessment).
    gene_share:
        Optional explicit K; overrides ``relation`` lookup.
    """

    relation: str
    diabetic: bool
    age: float
    gene_share: float = -1.0

    def k(self) -> float:
        if self.gene_share >= 0.0:
            if not 0.0 < self.gene_share <= 1.0:
                raise ValueError(
                    f"gene_share must be in (0, 1], got {self.gene_share}"
                )
            return self.gene_share
        try:
            return GENE_SHARE[self.relation]
        except KeyError:
            raise KeyError(
                f"unknown relation {self.relation!r}; known: "
                f"{sorted(GENE_SHARE)} (or pass gene_share explicitly)"
            ) from None

    def __post_init__(self) -> None:
        if not 0.0 < self.age < 130.0:
            raise ValueError(f"implausible relative age {self.age}")


def compute_dpf(relatives: Iterable[Relative]) -> float:
    """Evaluate the Smith et al. pedigree function.

    With no relatives at all (or no non-diabetic relatives), the
    denominator still carries its additive constant via an implicit
    "empty" term, matching the original implementation's behaviour of
    never dividing by zero: an empty numerator gives the baseline ratio
    ``20 / 50 = 0.4``-scaled contribution per the original ADAP paper's
    default handling — here we follow the convention used by the public
    dataset: numerator defaults to 20 and denominator to 50 when the
    respective relative list is empty.
    """
    relatives = list(relatives)
    num_terms = [
        r.k() * (_ADM_CEILING - r.age) + _NUM_OFFSET for r in relatives if r.diabetic
    ]
    den_terms = [
        r.k() * (r.age - _ACL_FLOOR) + _DEN_OFFSET for r in relatives if not r.diabetic
    ]
    numerator = sum(num_terms) if num_terms else _NUM_OFFSET
    denominator = sum(den_terms) if den_terms else _DEN_OFFSET
    if denominator <= 0:
        raise ValueError("denominator must be positive; check relative ages")
    return numerator / denominator
