"""Synthetic binarized-image workload (Smets et al.-style encoding input).

The HDC literature the paper builds on (see PAPERS.md: Smets et al.'s
binarized-image encodings) feeds *binary pixel grids* straight into the
hypervector encoder — each pixel is a 0/1 feature bound to its position
vector, no level quantisation involved.  This module synthesises such a
workload so the scenario library can exercise the record encoder's
**binary** path (seed/orthogonal pairs) at adjustable scale, instead of
only the linear level encoders the two paper datasets use.

Two pattern classes on a ``side x side`` grid:

* class 0 — a **cross** (centre row + centre column lit);
* class 1 — a **ring** (border frame lit);

corrupted by per-pixel Bernoulli flips.  Flip probability controls task
hardness smoothly: 0.0 is separable by a handful of pixels, 0.5 is pure
noise.  Everything is deterministic given the seed.
"""

from __future__ import annotations

import numpy as np

from repro.core.records import FeatureSpec
from repro.data.datasets import Dataset
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range, check_positive_int


def cross_mask(side: int) -> np.ndarray:
    """Binary ``(side, side)`` mask with the centre row + column lit."""
    check_positive_int(side, "side", minimum=3)
    mask = np.zeros((side, side), dtype=np.int64)
    mid = side // 2
    mask[mid, :] = 1
    mask[:, mid] = 1
    return mask


def ring_mask(side: int) -> np.ndarray:
    """Binary ``(side, side)`` mask with the one-pixel border frame lit."""
    check_positive_int(side, "side", minimum=3)
    mask = np.zeros((side, side), dtype=np.int64)
    mask[0, :] = mask[-1, :] = 1
    mask[:, 0] = mask[:, -1] = 1
    return mask


def generate_binarized_images(
    n_samples: int = 600,
    *,
    side: int = 12,
    flip_prob: float = 0.05,
    seed: SeedLike = 0,
) -> Dataset:
    """Labelled binarized-image dataset as flat 0/1 feature rows.

    Parameters
    ----------
    n_samples:
        Total images; classes are drawn balanced-in-expectation from the
        seeded generator.
    side:
        Grid side length; the dataset has ``side * side`` binary features
        named ``px_<row>_<col>``.
    flip_prob:
        Per-pixel label-noise probability in ``[0, 0.5]``.
    seed:
        Master seed (labels and flips derive from it deterministically).
    """
    check_positive_int(n_samples, "n_samples", minimum=4)
    check_positive_int(side, "side", minimum=3)
    check_in_range(flip_prob, "flip_prob", 0.0, 0.5, inclusive="both")
    rng = as_generator(seed)
    y = rng.integers(0, 2, size=n_samples).astype(np.int64)
    prototypes = np.stack(
        [cross_mask(side).ravel(), ring_mask(side).ravel()], axis=0
    )
    base = prototypes[y]
    flips = (rng.random((n_samples, side * side)) < flip_prob).astype(np.int64)
    X = np.bitwise_xor(base, flips).astype(np.float64)
    names = [f"px_{r}_{c}" for r in range(side) for c in range(side)]
    specs = [FeatureSpec(name, "binary") for name in names]
    return Dataset(
        name=f"images[{side}x{side}]",
        X=X,
        y=y,
        feature_names=names,
        specs=specs,
    )


__all__ = ["cross_mask", "generate_binarized_images", "ring_mask"]
