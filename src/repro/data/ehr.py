"""Longitudinal EHR simulation (§III-B substrate).

The paper's clinical-significance section proposes feeding the HDC model
from electronic health records at every follow-up visit and tracking
whether a patient's diabetes risk "has increased, decreased, or remained
unchanged".  The Pima dataset is cross-sectional, so this module
simulates the missing longitudinal substrate:

* each patient carries a **latent metabolic risk state** ``r in [0, 1]``
  that evolves between visits as a bounded random walk with a
  per-patient drift (susceptible patients drift up; patients "under
  intervention" drift down);
* visit features are drawn from the same class-conditional Pima marginals
  used by :mod:`repro.data.pima`, *interpolated* by ``r`` — a patient at
  ``r = 0.8`` draws glucose/BMI/insulin near the positive-class
  distribution — so a model trained on (cross-sectional) Pima transfers
  to the simulated visits;
* the visit label reproduces Pima's temporal semantics: positive iff the
  latent state crosses the diagnosis threshold within ``horizon`` visits
  (the dataset's "develops diabetes within five years" construction).

The simulator backs ``examples/ehr_longitudinal.py`` and the trend-
detection tests: a useful risk score must rise on up-drifting patients
and fall on down-drifting ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.data.pima import _TABLE1, PIMA_FEATURES  # calibrated marginals
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_in_range, check_positive_int

DIAGNOSIS_THRESHOLD = 0.72  # latent risk level treated as onset


@dataclass
class PatientTrajectory:
    """One simulated patient's follow-up record.

    Attributes
    ----------
    patient_id:
        Stable identifier within the cohort.
    visits:
        ``(n_visits, 8)`` feature matrix in :data:`PIMA_FEATURES` order.
    risk:
        ``(n_visits,)`` latent risk state (hidden from models; used by
        tests/examples as ground truth for trend evaluation).
    onset_labels:
        ``(n_visits,)`` int — 1 iff the latent risk crosses
        :data:`DIAGNOSIS_THRESHOLD` within the simulation horizon after
        that visit (Pima's "onset within five years" semantics).
    drift:
        The patient's per-visit latent drift (positive = deteriorating).
    """

    patient_id: int
    visits: np.ndarray
    risk: np.ndarray
    onset_labels: np.ndarray
    drift: float

    @property
    def n_visits(self) -> int:
        return int(self.visits.shape[0])

    def trend(self) -> str:
        """Ground-truth direction between first and last visit."""
        delta = self.risk[-1] - self.risk[0]
        if delta > 0.05:
            return "rising"
        if delta < -0.05:
            return "falling"
        return "stable"


def _interpolated_row(
    r: float, quantiles: np.ndarray, rng: np.random.Generator, *, jitter: float = 0.05
) -> np.ndarray:
    """Draw one visit's features with marginals blended by latent risk.

    Parameter blend: for each feature, the Beta marginal's (low, high,
    mean) interpolate linearly between the negative-class (r=0) and
    positive-class (r=1) calibrations.  ``quantiles`` is the patient's
    *persistent physiology* — their fixed percentile position within the
    population per feature — jittered slightly per visit, so consecutive
    visits of one patient are similar and within-patient change is driven
    by the latent risk, not by redrawing the whole population marginal.
    """
    from repro.data.synth import BetaMarginal

    row = np.empty(len(PIMA_FEATURES))
    for j, name in enumerate(PIMA_FEATURES):
        pos = _TABLE1[name][1]
        neg = _TABLE1[name][0]
        low = (1 - r) * neg.low + r * pos.low
        high = (1 - r) * neg.high + r * pos.high
        mean = (1 - r) * neg.mean + r * pos.mean
        conc = (neg.concentration + pos.concentration) / 2.0
        u = float(np.clip(quantiles[j] + rng.normal(0.0, jitter), 1e-4, 1 - 1e-4))
        marg = BetaMarginal(low, high, mean, concentration=conc, integer=neg.integer)
        row[j] = marg.ppf(np.asarray([u]))[0]
    return row


def simulate_trajectory(
    patient_id: int,
    *,
    n_visits: int = 6,
    drift: float = 0.0,
    start_risk: Optional[float] = None,
    noise: float = 0.04,
    seed: SeedLike = None,
) -> PatientTrajectory:
    """Simulate one patient's visit sequence.

    Parameters
    ----------
    n_visits:
        Number of follow-ups (>= 2).
    drift:
        Mean per-visit change of the latent risk; clinical stories:
        +0.05 = untreated deterioration, -0.05 = successful intervention.
    start_risk:
        Initial latent risk; default drawn uniform in [0.2, 0.6].
    noise:
        Std of the per-visit random-walk innovation.
    """
    check_positive_int(n_visits, "n_visits", minimum=2)
    check_in_range(noise, "noise", 0.0, 0.5, inclusive="low")
    rng = as_generator(seed)
    r = float(rng.uniform(0.2, 0.6)) if start_risk is None else float(start_risk)
    check_in_range(r, "start_risk", 0.0, 1.0)

    # Persistent physiology: this patient's percentile per feature.
    quantiles = rng.random(len(PIMA_FEATURES))
    risks = np.empty(n_visits)
    visits = np.empty((n_visits, len(PIMA_FEATURES)))
    for t in range(n_visits):
        risks[t] = r
        visits[t] = _interpolated_row(r, quantiles, rng)
        r = float(np.clip(r + drift + rng.normal(0.0, noise), 0.0, 1.0))

    # Onset label: does the latent state cross the threshold at or after
    # this visit (within the simulated horizon)?
    crossed = risks >= DIAGNOSIS_THRESHOLD
    onset = np.zeros(n_visits, dtype=np.int64)
    for t in range(n_visits):
        onset[t] = int(crossed[t:].any())
    # Age must be non-decreasing across visits: enforce monotone repair.
    age_col = PIMA_FEATURES.index("age")
    visits[:, age_col] = np.maximum.accumulate(visits[:, age_col])
    # Pregnancies cannot decrease either.
    preg_col = PIMA_FEATURES.index("pregnancies")
    visits[:, preg_col] = np.maximum.accumulate(visits[:, preg_col])
    return PatientTrajectory(
        patient_id=patient_id,
        visits=visits,
        risk=risks,
        onset_labels=onset,
        drift=drift,
    )


def simulate_cohort(
    n_patients: int = 50,
    *,
    n_visits: int = 6,
    deteriorating_fraction: float = 0.3,
    improving_fraction: float = 0.2,
    seed: SeedLike = 0,
) -> List[PatientTrajectory]:
    """Simulate a follow-up cohort with mixed clinical courses.

    ``deteriorating_fraction`` of patients drift up (+0.04..0.08/visit),
    ``improving_fraction`` drift down, the rest are stable.  Patient
    order is shuffled so course type is not recoverable from the id.
    """
    check_positive_int(n_patients, "n_patients")
    if deteriorating_fraction + improving_fraction > 1.0:
        raise ValueError("course fractions must sum to <= 1")
    rng = as_generator(seed)
    n_up = int(round(deteriorating_fraction * n_patients))
    n_down = int(round(improving_fraction * n_patients))
    drifts = (
        [float(rng.uniform(0.04, 0.08)) for _ in range(n_up)]
        + [float(-rng.uniform(0.04, 0.08)) for _ in range(n_down)]
        + [0.0] * (n_patients - n_up - n_down)
    )
    rng.shuffle(drifts)
    cohort = []
    for pid, drift in enumerate(drifts):
        start = float(rng.uniform(0.45, 0.6)) if drift < 0 else None
        cohort.append(
            simulate_trajectory(
                pid,
                n_visits=n_visits,
                drift=drift,
                start_risk=start,
                seed=rng,
            )
        )
    return cohort


def cohort_to_matrix(cohort: List[PatientTrajectory]) -> tuple:
    """Flatten a cohort to ``(X, y, patient_ids, visit_index)`` arrays."""
    if not cohort:
        raise ValueError("empty cohort")
    X = np.vstack([t.visits for t in cohort])
    y = np.concatenate([t.onset_labels for t in cohort])
    pids = np.concatenate([[t.patient_id] * t.n_visits for t in cohort])
    visit_idx = np.concatenate([np.arange(t.n_visits) for t in cohort])
    return X, y, pids.astype(np.int64), visit_idx.astype(np.int64)
