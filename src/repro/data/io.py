"""CSV interchange (S13): load the *real* datasets when a user has them.

The synthetic generators are the offline default, but a downstream user
with the actual UCI/Kaggle files should be able to drop them in.  These
parsers accept the canonical public formats:

* ``diabetes.csv`` (Kaggle Pima): header row, 8 numeric columns + Outcome;
* ``diabetes_data_upload.csv`` (UCI early-stage): header row, Age, Gender
  (Male/Female), 14 Yes/No symptom columns, class (Positive/Negative).

No pandas in this environment, so parsing is a small hand-rolled CSV
reader (stdlib ``csv``) with strict validation.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from repro.data.datasets import Dataset
from repro.data.pima import PIMA_FEATURES, pima_feature_specs
from repro.data.sylhet import SYLHET_FEATURES, sylhet_feature_specs

_PIMA_CSV_COLUMNS = [
    "Pregnancies",
    "Glucose",
    "BloodPressure",
    "SkinThickness",
    "Insulin",
    "BMI",
    "DiabetesPedigreeFunction",
    "Age",
]

_SYLHET_CSV_COLUMNS = [
    "Age",
    "Gender",
    "Polyuria",
    "Polydipsia",
    "sudden weight loss",
    "weakness",
    "Polyphagia",
    "Genital thrush",
    "visual blurring",
    "Itching",
    "Irritability",
    "delayed healing",
    "partial paresis",
    "muscle stiffness",
    "Alopecia",
    "Obesity",
]


def _read_csv(path: Union[str, Path]) -> List[Dict[str, str]]:
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no such file: {path}")
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None:
            raise ValueError(f"{path}: empty file or missing header")
        rows = [dict(row) for row in reader]
    if not rows:
        raise ValueError(f"{path}: header only, no data rows")
    return rows


def _require_columns(rows: List[Dict[str, str]], required: Sequence[str], path) -> None:
    have = set(rows[0])
    missing = [c for c in required if c not in have]
    if missing:
        raise ValueError(f"{path}: missing columns {missing}; found {sorted(have)}")


def load_pima_csv(path: Union[str, Path]) -> Dataset:
    """Parse the Kaggle Pima CSV into a :class:`Dataset` (full table).

    Output feature order matches :data:`repro.data.pima.PIMA_FEATURES`
    (zeros in lab columns are kept — apply ``load_pima_r``/``load_pima_m``
    style treatments via :mod:`repro.data.impute`).
    """
    rows = _read_csv(path)
    _require_columns(rows, _PIMA_CSV_COLUMNS + ["Outcome"], path)
    n = len(rows)
    X = np.empty((n, 8), dtype=np.float64)
    y = np.empty(n, dtype=np.int64)
    # Map CSV order to our canonical order.
    csv_for_ours = {
        "pregnancies": "Pregnancies",
        "glucose": "Glucose",
        "blood_pressure": "BloodPressure",
        "skin_thickness": "SkinThickness",
        "insulin": "Insulin",
        "bmi": "BMI",
        "dpf": "DiabetesPedigreeFunction",
        "age": "Age",
    }
    for i, row in enumerate(rows):
        try:
            for j, ours in enumerate(PIMA_FEATURES):
                X[i, j] = float(row[csv_for_ours[ours]])
            y[i] = int(row["Outcome"])
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{path}: bad value in data row {i + 1}: {exc}") from exc
    if not set(np.unique(y).tolist()) <= {0, 1}:
        raise ValueError(f"{path}: Outcome must be 0/1")
    return Dataset(
        name="pima",
        X=X,
        y=y,
        feature_names=list(PIMA_FEATURES),
        specs=pima_feature_specs(),
    )


_YESNO = {"yes": 1.0, "no": 0.0}


def load_sylhet_csv(path: Union[str, Path]) -> Dataset:
    """Parse the UCI early-stage-diabetes CSV into a :class:`Dataset`.

    Gender becomes 1 = Male / 2 = Female (paper's convention); symptoms
    become 0/1; the class column accepts Positive/Negative.
    """
    rows = _read_csv(path)
    _require_columns(rows, _SYLHET_CSV_COLUMNS + ["class"], path)
    n = len(rows)
    X = np.empty((n, 16), dtype=np.float64)
    y = np.empty(n, dtype=np.int64)
    for i, row in enumerate(rows):
        try:
            X[i, 0] = float(row["Age"])
            gender = row["Gender"].strip().lower()
            if gender not in ("male", "female"):
                raise ValueError(f"Gender must be Male/Female, got {row['Gender']!r}")
            X[i, 1] = 1.0 if gender == "male" else 2.0
            for j, col in enumerate(_SYLHET_CSV_COLUMNS[2:], start=2):
                val = row[col].strip().lower()
                if val not in _YESNO:
                    raise ValueError(f"{col} must be Yes/No, got {row[col]!r}")
                X[i, j] = _YESNO[val]
            cls = row["class"].strip().lower()
            if cls not in ("positive", "negative"):
                raise ValueError(f"class must be Positive/Negative, got {row['class']!r}")
            y[i] = 1 if cls == "positive" else 0
        except (TypeError, ValueError) as exc:
            raise ValueError(f"{path}: bad value in data row {i + 1}: {exc}") from exc
    return Dataset(
        name="sylhet",
        X=X,
        y=y,
        feature_names=list(SYLHET_FEATURES),
        specs=sylhet_feature_specs(),
    )


def save_dataset_csv(ds: Dataset, path: Union[str, Path]) -> None:
    """Write a dataset as CSV (features + ``label`` column) for interchange."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(list(ds.feature_names) + ["label"])
        for i in range(ds.n_samples):
            writer.writerow([f"{v:g}" for v in ds.X[i]] + [int(ds.y[i])])
