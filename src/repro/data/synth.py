"""Synthesis machinery (S13): Gaussian copulas over calibrated marginals.

No network access means the public Pima/Sylhet CSVs cannot be downloaded,
so the datasets are *simulated* (see DESIGN.md §3).  The generator has two
layers:

* per-feature **marginals** matched to published class-conditional
  statistics (mean and range → a scaled Beta distribution, which respects
  the exact range and hits the mean);
* a **Gaussian copula** imposing a specified correlation structure across
  features without disturbing the marginals.

Both layers are deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class BetaMarginal:
    """A Beta distribution rescaled to ``[low, high]`` with a target mean.

    ``concentration`` sets α + β: small values give broad, skewed spread
    (lab measurements like insulin), large values concentrate around the
    mean (age within an adult cohort).
    """

    low: float
    high: float
    mean: float
    concentration: float = 5.0
    integer: bool = False

    def __post_init__(self) -> None:
        if not self.low < self.high:
            raise ValueError(f"low must be < high, got [{self.low}, {self.high}]")
        if not self.low <= self.mean <= self.high:
            raise ValueError(
                f"mean {self.mean} outside range [{self.low}, {self.high}]"
            )
        if self.concentration <= 0:
            raise ValueError("concentration must be positive")

    def _alpha_beta(self) -> Tuple[float, float]:
        mu = (self.mean - self.low) / (self.high - self.low)
        mu = float(np.clip(mu, 1e-3, 1 - 1e-3))
        return mu * self.concentration, (1 - mu) * self.concentration

    def ppf(self, u: np.ndarray) -> np.ndarray:
        """Quantile function on the rescaled support."""
        a, b = self._alpha_beta()
        x = self.low + (self.high - self.low) * stats.beta.ppf(u, a, b)
        return np.round(x) if self.integer else x


@dataclass(frozen=True)
class BernoulliMarginal:
    """Binary feature with success probability ``p`` (optionally shifted
    per-sample by a latent severity score — see :func:`copula_sample`)."""

    p: float
    severity_slope: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"p must be in [0, 1], got {self.p}")

    def prob(self, severity: Optional[np.ndarray]) -> np.ndarray:
        if severity is None or self.severity_slope == 0.0:
            return np.full(1, self.p)
        return np.clip(self.p + self.severity_slope * (severity - 0.5), 0.0, 1.0)

    def ppf(self, u: np.ndarray, severity: Optional[np.ndarray] = None) -> np.ndarray:
        p = self.prob(severity)
        return (u < p).astype(np.float64)


def nearest_positive_definite(corr: np.ndarray, *, eps: float = 1e-6) -> np.ndarray:
    """Clip eigenvalues so a hand-written correlation matrix is usable.

    Hand-specified pairwise correlations are rarely exactly PSD; this
    projects to the nearest PSD matrix (Higham-style eigenvalue clipping)
    and re-normalises the diagonal to 1.
    """
    corr = np.asarray(corr, dtype=np.float64)
    if corr.ndim != 2 or corr.shape[0] != corr.shape[1]:
        raise ValueError("correlation matrix must be square")
    if not np.allclose(corr, corr.T, atol=1e-8):
        raise ValueError("correlation matrix must be symmetric")
    w, V = np.linalg.eigh(corr)
    w = np.maximum(w, eps)
    fixed = (V * w) @ V.T
    d = np.sqrt(np.diag(fixed))
    fixed = fixed / np.outer(d, d)
    np.fill_diagonal(fixed, 1.0)
    return fixed


def build_correlation(n: int, pairs: Dict[Tuple[int, int], float]) -> np.ndarray:
    """Identity plus specified symmetric off-diagonal entries, made PSD."""
    corr = np.eye(n)
    for (i, j), rho in pairs.items():
        if not -1.0 < rho < 1.0:
            raise ValueError(f"correlation must be in (-1, 1), got {rho}")
        if i == j:
            raise ValueError("diagonal correlations are fixed at 1")
        corr[i, j] = corr[j, i] = rho
    return nearest_positive_definite(corr)


def copula_uniforms(
    n_samples: int,
    corr: np.ndarray,
    seed: SeedLike = None,
) -> np.ndarray:
    """Correlated U(0,1) columns via a Gaussian copula.

    Draw ``z ~ N(0, corr)`` (Cholesky), push through Φ.  Column marginals
    are exactly uniform; rank correlations approximate ``corr``.
    """
    rng = as_generator(seed)
    n_feat = corr.shape[0]
    L = np.linalg.cholesky(corr)
    z = rng.standard_normal((n_samples, n_feat)) @ L.T
    return stats.norm.cdf(z)


def sample_continuous(
    marginals: Sequence[BetaMarginal],
    n_samples: int,
    corr: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """Sample an ``(n, F)`` continuous block honouring marginals + copula."""
    f = len(marginals)
    if f == 0:
        raise ValueError("need at least one marginal")
    if corr is None:
        corr = np.eye(f)
    if corr.shape != (f, f):
        raise ValueError(f"corr shape {corr.shape} != ({f}, {f})")
    U = copula_uniforms(n_samples, corr, seed)
    out = np.empty((n_samples, f), dtype=np.float64)
    for j, marg in enumerate(marginals):
        out[:, j] = marg.ppf(U[:, j])
    return out
