"""Missing-data treatments (S13) — the paper's Pima R / Pima M pipelines.

The Pima dataset encodes missing laboratory values as zeros.  The paper
derives two working datasets:

* **Pima R** — rows with any missing value removed (complete-case
  analysis), yielding 392 patients;
* **Pima M** — each zero replaced with the median of its feature *within
  the same outcome class* (following the Kaggle notebook [38] the paper
  normalises against).

Both operate on :class:`repro.data.datasets.Dataset` and return new
datasets; inputs are never mutated.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.data.datasets import Dataset


def missing_mask(ds: Dataset, columns: Sequence[str]) -> np.ndarray:
    """Boolean ``(n, len(columns))`` mask of zero-encoded missing entries."""
    idx = [_column_index(ds, c) for c in columns]
    return ds.X[:, idx] == 0.0


def _column_index(ds: Dataset, column: str) -> int:
    try:
        return ds.feature_names.index(column)
    except ValueError:
        raise KeyError(
            f"column {column!r} not in dataset {ds.name!r}; "
            f"available: {ds.feature_names}"
        ) from None


def drop_incomplete(
    ds: Dataset, columns: Sequence[str], *, name: Optional[str] = None
) -> Dataset:
    """Complete-case filter: remove every row with a zero in ``columns``."""
    mask = missing_mask(ds, columns)
    keep = ~mask.any(axis=1)
    if not keep.any():
        raise ValueError("complete-case filtering removed every row")
    return ds.subset(np.flatnonzero(keep), name=name or f"{ds.name}_r")


def median_impute_by_class(
    ds: Dataset, columns: Sequence[str], *, name: Optional[str] = None
) -> Dataset:
    """Replace zeros with the per-class median of the non-missing values.

    The median is computed over *observed* (non-zero) entries of the same
    outcome class, exactly the [38] recipe.  A class whose observations
    are all missing falls back to the overall observed median.
    """
    X = ds.X.copy()
    for column in columns:
        j = _column_index(ds, column)
        observed_all = X[:, j] != 0.0
        if not observed_all.any():
            raise ValueError(f"column {column!r} has no observed values to impute from")
        global_median = float(np.median(X[observed_all, j]))
        for cls in np.unique(ds.y):
            cls_rows = ds.y == cls
            observed = cls_rows & observed_all
            fill = float(np.median(X[observed, j])) if observed.any() else global_median
            missing = cls_rows & ~observed_all
            X[missing, j] = fill
    return Dataset(
        name=name or f"{ds.name}_m",
        X=X,
        y=ds.y.copy(),
        feature_names=list(ds.feature_names),
        specs=list(ds.specs),
    )


def mean_impute(
    ds: Dataset, columns: Sequence[str], *, name: Optional[str] = None
) -> Dataset:
    """Class-agnostic mean imputation (baseline for the imputation ablation)."""
    X = ds.X.copy()
    for column in columns:
        j = _column_index(ds, column)
        observed = X[:, j] != 0.0
        if not observed.any():
            raise ValueError(f"column {column!r} has no observed values to impute from")
        X[~observed, j] = float(np.mean(X[observed, j]))
    return Dataset(
        name=name or f"{ds.name}_mean",
        X=X,
        y=ds.y.copy(),
        feature_names=list(ds.feature_names),
        specs=list(ds.specs),
    )
