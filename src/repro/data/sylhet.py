"""Sylhet early-stage diabetes dataset substrate (S13).

The real dataset (Islam et al. 2020; 520 questionnaire responses from the
Sylhet Diabetes Hospital, Bangladesh: age + sex + 14 yes/no symptoms,
outcome verified by medical assessment) is replaced by a calibrated
synthetic generator (offline environment; DESIGN.md §3).

Calibration: 520 rows with the real 320/200 class split; symptom
prevalences per class follow the source paper's published statistics —
polyuria and polydipsia are strongly discriminative, itching and delayed
healing are nearly uninformative, alopecia is *negatively* associated.
A per-patient latent severity couples the informative symptoms so they
co-occur, as in the real questionnaire data.

Note on the feature list: the paper's §II-A.2 enumerates 15 features but
states the NN input is 16 — it omits "visual blurring", which is present
in the real UCI dataset.  We include it to match the 16-feature input
(age + sex + 14 symptoms).  Sex is encoded 1 = male, 2 = female as in the
paper.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.records import FeatureSpec
from repro.data.datasets import Dataset
from repro.data.synth import BetaMarginal
from repro.utils.rng import SeedLike, as_generator, derive_seed

SYLHET_TOTAL = 520
SYLHET_POSITIVE = 320
SYLHET_NEGATIVE = 200

SYLHET_FEATURES = [
    "age",
    "sex",
    "polyuria",
    "polydipsia",
    "sudden_weight_loss",
    "weakness",
    "polyphagia",
    "genital_thrush",
    "visual_blurring",
    "itching",
    "irritability",
    "delayed_healing",
    "partial_paresis",
    "muscle_stiffness",
    "alopecia",
    "obesity",
]

# Age marginals (years) per class, from the source study's cohort stats.
_AGE = {
    1: BetaMarginal(16, 90, 49, concentration=8.0, integer=True),
    0: BetaMarginal(16, 85, 46, concentration=8.0, integer=True),
}

# P(symptom = yes | class) and severity coupling for the informative
# symptoms.  (base_pos, base_neg, severity_slope): the slope shifts a
# positive patient's probability with their latent severity in [0, 1].
_SYMPTOMS: Dict[str, Tuple[float, float, float]] = {
    "polyuria": (0.76, 0.12, 0.40),
    "polydipsia": (0.70, 0.09, 0.40),
    "sudden_weight_loss": (0.55, 0.17, 0.30),
    "weakness": (0.68, 0.42, 0.20),
    "polyphagia": (0.58, 0.25, 0.25),
    "genital_thrush": (0.28, 0.14, 0.10),
    "visual_blurring": (0.54, 0.28, 0.20),
    "itching": (0.48, 0.49, 0.0),
    "irritability": (0.32, 0.11, 0.15),
    "delayed_healing": (0.46, 0.45, 0.0),
    "partial_paresis": (0.60, 0.14, 0.30),
    "muscle_stiffness": (0.42, 0.30, 0.10),
    "alopecia": (0.26, 0.45, -0.10),
    "obesity": (0.18, 0.15, 0.05),
}

# P(male | class): the real cohort's gender signal is strong (most
# negatives are male; positives skew female).
_P_MALE = {1: 0.45, 0: 0.90}


def sylhet_feature_specs() -> list:
    """Age is linear; sex (1/2) is categorical-as-binary via shift; the 14
    symptoms are binary — matching §II-B's encoding choices."""
    specs = [FeatureSpec("age", "linear")]
    # Sex is stored as 1/2 per the paper; the record encoder sees a
    # two-category column.  Encoding it categorically gives the same
    # seed/orthogonal structure the paper's binary rule produces.
    specs.append(FeatureSpec("sex", "categorical"))
    specs.extend(FeatureSpec(name, "binary") for name in SYLHET_FEATURES[2:])
    return specs


def generate_sylhet(
    *,
    n_samples: int = SYLHET_TOTAL,
    n_positive: int = SYLHET_POSITIVE,
    seed: SeedLike = 2023,
) -> Dataset:
    """Synthesise the Sylhet questionnaire table."""
    if not 0 < n_positive < n_samples:
        raise ValueError("need 0 < n_positive < n_samples")
    n_negative = n_samples - n_positive
    rng = as_generator(seed)

    X = np.empty((n_samples, len(SYLHET_FEATURES)), dtype=np.float64)
    y = np.concatenate(
        [np.ones(n_positive, dtype=np.int64), np.zeros(n_negative, dtype=np.int64)]
    )

    # Latent severity: positives spread across the disease spectrum,
    # negatives concentrated low.  Couples the informative symptoms.
    severity = np.where(
        y == 1,
        rng.beta(2.0, 1.5, size=n_samples),
        rng.beta(1.5, 4.0, size=n_samples),
    )

    for cls in (1, 0):
        rows = np.flatnonzero(y == cls)
        age_rng = as_generator(derive_seed(seed, "sylhet-age", cls))
        u = age_rng.random(rows.size)
        X[rows, 0] = _AGE[cls].ppf(u)
        X[rows, 1] = np.where(rng.random(rows.size) < _P_MALE[cls], 1.0, 2.0)

    for j, name in enumerate(SYLHET_FEATURES[2:], start=2):
        base_pos, base_neg, slope = _SYMPTOMS[name]
        base = np.where(y == 1, base_pos, base_neg)
        slope_arr = np.where(y == 1, slope, 0.0)
        p = np.clip(base + slope_arr * (severity - 0.5), 0.0, 1.0)
        X[:, j] = (rng.random(n_samples) < p).astype(np.float64)

    perm = rng.permutation(n_samples)
    return Dataset(
        name="sylhet",
        X=X[perm],
        y=y[perm],
        feature_names=list(SYLHET_FEATURES),
        specs=sylhet_feature_specs(),
    )


def load_sylhet(seed: SeedLike = 2023) -> Dataset:
    """Default Sylhet dataset used by the experiment harness."""
    return generate_sylhet(seed=seed)
