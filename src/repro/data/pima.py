"""Pima Indians Diabetes dataset substrate (S13).

The real dataset (Smith et al. 1988; 768 adult Pima women, 8 features,
five-year diabetes onset label) cannot be downloaded in this offline
environment, so :func:`generate_pima` synthesises a drop-in replacement
calibrated to the paper's own Table I (per-class mean and min-max of every
feature), with

* the real dataset's sample structure: 768 rows, 268 positive / 500
  negative;
* a clinically-motivated correlation structure (glucose-insulin,
  BMI-skin-thickness, age-pregnancies, age-blood-pressure);
* the real missing-data pattern: zeros in glucose / blood pressure / skin
  thickness / insulin / BMI, placed so that complete-case filtering yields
  exactly the paper's 392 rows (130 positive / 262 negative).

``load_pima_r`` / ``load_pima_m`` apply the paper's two missing-data
treatments (complete-case deletion; per-class median imputation following
the Kaggle notebook of Artem cited as [38]).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.core.records import FeatureSpec
from repro.data.datasets import Dataset
from repro.data.impute import drop_incomplete, median_impute_by_class
from repro.data.synth import BetaMarginal, build_correlation, sample_continuous
from repro.utils.rng import SeedLike, as_generator, derive_seed

PIMA_FEATURES = [
    "pregnancies",
    "glucose",
    "blood_pressure",
    "skin_thickness",
    "insulin",
    "bmi",
    "dpf",
    "age",
]

#: Columns where the real dataset encodes "missing" as a zero.
PIMA_MISSING_COLUMNS = ["glucose", "blood_pressure", "skin_thickness", "insulin", "bmi"]

# Class-conditional marginals calibrated to the paper's Table I:
# value = mean, (low, high) = range.  Concentrations chosen so the
# synthetic spread matches the published clinical spreads (broad for lab
# values, tighter for anthropometrics).
_TABLE1: Dict[str, Dict[int, BetaMarginal]] = {
    "age": {
        1: BetaMarginal(21, 60, 36, concentration=4.0, integer=True),
        0: BetaMarginal(21, 81, 28, concentration=3.0, integer=True),
    },
    "pregnancies": {
        1: BetaMarginal(0, 17, 4, concentration=3.0, integer=True),
        0: BetaMarginal(0, 13, 3, concentration=3.0, integer=True),
    },
    "glucose": {
        1: BetaMarginal(78, 198, 145, concentration=6.0),
        0: BetaMarginal(56, 197, 111, concentration=6.0),
    },
    "bmi": {
        1: BetaMarginal(23, 67, 36, concentration=7.0),
        0: BetaMarginal(18, 57, 32, concentration=7.0),
    },
    "skin_thickness": {
        1: BetaMarginal(7, 63, 33, concentration=6.0, integer=True),
        0: BetaMarginal(7, 60, 27, concentration=6.0, integer=True),
    },
    "insulin": {
        1: BetaMarginal(14, 846, 207, concentration=2.5),
        0: BetaMarginal(15, 744, 130, concentration=2.5),
    },
    "dpf": {
        1: BetaMarginal(0.12, 2.42, 0.60, concentration=3.5),
        0: BetaMarginal(0.08, 2.39, 0.47, concentration=3.5),
    },
    "blood_pressure": {
        1: BetaMarginal(30, 110, 74, concentration=10.0, integer=True),
        0: BetaMarginal(24, 106, 69, concentration=10.0, integer=True),
    },
}

# Documented clinical correlations (indices follow PIMA_FEATURES order).
_COL = {name: i for i, name in enumerate(PIMA_FEATURES)}
_PIMA_CORRELATIONS = {
    (_COL["age"], _COL["pregnancies"]): 0.55,
    (_COL["glucose"], _COL["insulin"]): 0.60,
    (_COL["bmi"], _COL["skin_thickness"]): 0.60,
    (_COL["glucose"], _COL["bmi"]): 0.20,
    (_COL["age"], _COL["blood_pressure"]): 0.30,
    (_COL["bmi"], _COL["blood_pressure"]): 0.25,
    (_COL["glucose"], _COL["age"]): 0.25,
}

# Real-dataset structure: 768 rows, 268 positive, and after complete-case
# filtering the paper reports 392 rows (130 positive / 262 negative).
PIMA_TOTAL = 768
PIMA_POSITIVE = 268
PIMA_NEGATIVE = 500
PIMA_COMPLETE_POSITIVE = 130
PIMA_COMPLETE_NEGATIVE = 262

# Conditional missing-feature probabilities for a row designated
# incomplete; insulin is always the (first) missing lab, mirroring the
# real data where insulin accounts for 374 of the incomplete rows.
_MISSING_PROFILE = {
    "insulin": 1.0,
    "skin_thickness": 0.60,
    "blood_pressure": 0.09,
    "bmi": 0.03,
    "glucose": 0.013,
}


def pima_feature_specs() -> list:
    """All eight Pima columns are continuous → linear (level) encoding."""
    return [FeatureSpec(name, "linear") for name in PIMA_FEATURES]


def generate_pima(
    *,
    n_samples: int = PIMA_TOTAL,
    n_positive: int = PIMA_POSITIVE,
    seed: SeedLike = 2023,
    inject_missing: bool = True,
) -> Dataset:
    """Synthesise the full Pima table (with zero-encoded missing values).

    Rows are ordered positive-block then negative-block and then shuffled;
    the missing-value mask is placed so complete-case filtering reproduces
    the paper's class counts exactly (scaled proportionally if a
    non-default size is requested).
    """
    if not 0 < n_positive < n_samples:
        raise ValueError("need 0 < n_positive < n_samples")
    n_negative = n_samples - n_positive
    rng = as_generator(seed)
    corr = build_correlation(len(PIMA_FEATURES), _PIMA_CORRELATIONS)

    blocks = []
    labels = []
    for cls, n_cls in ((1, n_positive), (0, n_negative)):
        marginals = [_TABLE1[name][cls] for name in PIMA_FEATURES]
        block = sample_continuous(
            marginals, n_cls, corr, seed=derive_seed(seed, "pima", cls)
        )
        blocks.append(block)
        labels.append(np.full(n_cls, cls, dtype=np.int64))
    X = np.vstack(blocks)
    y = np.concatenate(labels)

    if inject_missing:
        _inject_missing(X, y, n_positive, n_negative, rng)

    perm = rng.permutation(n_samples)
    X, y = X[perm], y[perm]
    return Dataset(
        name="pima",
        X=X,
        y=y,
        feature_names=list(PIMA_FEATURES),
        specs=pima_feature_specs(),
    )


def _inject_missing(
    X: np.ndarray,
    y: np.ndarray,
    n_positive: int,
    n_negative: int,
    rng: np.random.Generator,
) -> None:
    """Zero out lab values on a fixed count of designated incomplete rows."""
    # Scale the paper's complete-case counts to the requested sizes.
    n_pos_complete = int(round(PIMA_COMPLETE_POSITIVE * n_positive / PIMA_POSITIVE))
    n_neg_complete = int(round(PIMA_COMPLETE_NEGATIVE * n_negative / PIMA_NEGATIVE))
    pos_rows = np.flatnonzero(y == 1)
    neg_rows = np.flatnonzero(y == 0)
    incomplete = np.concatenate(
        [
            rng.choice(pos_rows, size=len(pos_rows) - n_pos_complete, replace=False),
            rng.choice(neg_rows, size=len(neg_rows) - n_neg_complete, replace=False),
        ]
    )
    col = {name: i for i, name in enumerate(PIMA_FEATURES)}
    for row in incomplete:
        zeroed = False
        for feat, p in _MISSING_PROFILE.items():
            if rng.random() < p:
                X[row, col[feat]] = 0.0
                zeroed = True
        if not zeroed:  # guarantee the row really is incomplete
            X[row, col["insulin"]] = 0.0


def load_pima_r(seed: SeedLike = 2023, base: Optional[Dataset] = None) -> Dataset:
    """Pima R: complete cases only (the paper's primary preprocessing)."""
    ds = base if base is not None else generate_pima(seed=seed)
    return drop_incomplete(ds, PIMA_MISSING_COLUMNS, name="pima_r")


def load_pima_m(seed: SeedLike = 2023, base: Optional[Dataset] = None) -> Dataset:
    """Pima M: zeros replaced by the per-class median (Artem's variant)."""
    ds = base if base is not None else generate_pima(seed=seed)
    return median_impute_by_class(ds, PIMA_MISSING_COLUMNS, name="pima_m")
